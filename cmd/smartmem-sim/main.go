// Command smartmem-sim runs one SmarTmem scenario under one policy and
// prints per-VM running times, memory-management statistics and,
// optionally, the tmem-usage chart and CSV series. With -times it instead
// sweeps every (policy, seed) combination of the scenario concurrently and
// prints the aggregated running-times table.
//
// The run executes as a smartmem.Session; -json and -events attach the
// built-in result sinks to its event stream ("-" writes to stdout and
// suppresses the text report).
//
// Usage:
//
//	smartmem-sim -scenario s2 -policy smart-alloc:P=6 -seed 11 -chart
//	smartmem-sim -scenario usemem -policy greedy -csv series.csv
//	smartmem-sim -scenario usemem -policy greedy -json run.json -events -
//	smartmem-sim -scenario scale-12 -times -parallel 8
//
// With -tournament it sweeps policies × scenarios × seeds (comma-separate
// -scenario, -policies and -seeds to widen the bracket) and prints the
// deterministic policy league table; -memo points repeated sweeps at an
// on-disk run cache so already-computed cells return instantly:
//
//	smartmem-sim -tournament -scenario diurnal,leaky,noisy-neighbor -memo .memo
//	smartmem-sim -tournament -scenario s2 -policies greedy,smart-alloc:P=2 \
//	    -seeds 11,23 -league-json league.json -league-csv league.csv
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"runtime"
	"runtime/pprof"
	"strconv"
	"strings"

	"smartmem"
	"smartmem/internal/experiments"
	"smartmem/sinks"
)

func main() {
	os.Exit(realMain(os.Args[1:], os.Stdout, os.Stderr))
}

// realMain is the testable entry point: it parses args and writes to the
// given streams instead of touching the process globals.
func realMain(args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("smartmem-sim", flag.ContinueOnError)
	fs.SetOutput(stderr)
	var (
		scenario  = fs.String("scenario", "s1", "scenario slug: s1, s2, usemem, s3, scale-<n>, churn")
		policy    = fs.String("policy", "greedy", `policy spec: no-tmem, greedy, static-alloc, reconf-static, smart-alloc:P=<pct>`)
		seed      = fs.Uint64("seed", 11, "random seed")
		chart     = fs.Bool("chart", false, "print the tmem-usage chart (paper Figures 4/6/8/10)")
		csvPath   = fs.String("csv", "", "write the tmem time series as CSV to this file")
		jsonPath  = fs.String("json", "", `write the full run (events + result) as one JSON document to this file ("-" = stdout, suppressing the text report)`)
		evPath    = fs.String("events", "", `stream lifecycle events as NDJSON to this file while the run executes ("-" = stdout, suppressing the text report)`)
		list      = fs.Bool("list", false, "list registered scenarios and exit")
		listPol   = fs.Bool("list-policies", false, "list registered policies and exit")
		times     = fs.Bool("times", false, "sweep (policy, seed) combinations and print the times table; uses the scenario's policy list and default seeds unless -policy/-seed are given")
		tourney   = fs.Bool("tournament", false, "sweep policies × scenarios × seeds and print the policy league table; -scenario accepts a comma-separated list")
		policiesF = fs.String("policies", "", "comma-separated policy specs for -tournament (default: the union of the scenarios' own policy lists)")
		seedsF    = fs.String("seeds", "", "comma-separated seeds for -tournament (default: the standard five)")
		memoDir   = fs.String("memo", "", "directory of the on-disk run cache; repeated -times/-tournament cells are recalled instead of resimulated")
		leagueJ   = fs.String("league-json", "", `write the league table as JSON to this file ("-" = stdout, suppressing the text tables)`)
		leagueC   = fs.String("league-csv", "", `write the league table as CSV to this file ("-" = stdout, suppressing the text tables)`)
		parallel  = fs.Int("parallel", runtime.NumCPU(), "concurrent simulation runs for -times/-tournament (1 = sequential)")
		clusterP  = fs.Bool("cluster-parallel", false, "run cluster scenarios with one kernel per node on its own goroutine (results are byte-identical to the sequential runtime)")
		quiet     = fs.Bool("quiet", false, "suppress live progress on stderr")
		cpuProf   = fs.String("cpuprofile", "", "write a CPU profile to this file")
		memProf   = fs.String("memprofile", "", "write a heap profile to this file on exit")
	)
	if err := fs.Parse(args); err != nil {
		if err == flag.ErrHelp {
			return 0
		}
		return 2
	}

	fail := func(err error) int {
		fmt.Fprintln(stderr, "smartmem-sim:", err)
		return 1
	}

	if *list {
		if err := experiments.RegistryTable().Render(stdout); err != nil {
			return fail(err)
		}
		return 0
	}
	if *listPol {
		if err := experiments.PolicyTable().Render(stdout); err != nil {
			return fail(err)
		}
		return 0
	}

	// Profiling hooks, so tier-stack hot-path work is measurable:
	//
	//	smartmem-sim -scenario kv-heavy -cpuprofile cpu.prof -memprofile mem.prof
	if *cpuProf != "" {
		f, err := os.Create(*cpuProf)
		if err != nil {
			return fail(err)
		}
		if err := pprof.StartCPUProfile(f); err != nil {
			f.Close()
			return fail(err)
		}
		defer func() {
			pprof.StopCPUProfile()
			f.Close()
		}()
	}
	if *memProf != "" {
		defer func() {
			f, err := os.Create(*memProf)
			if err != nil {
				fmt.Fprintln(stderr, "smartmem-sim: memprofile:", err)
				return
			}
			defer f.Close()
			runtime.GC()
			if err := pprof.WriteHeapProfile(f); err != nil {
				fmt.Fprintln(stderr, "smartmem-sim: memprofile:", err)
			}
		}()
	}

	// sweepOpts assembles the execution options shared by the -times and
	// -tournament sweeps: pool size, cluster runtime, progress output and —
	// when -memo names a directory — the persistent run cache.
	sweepOpts := func() (smartmem.ExperimentOptions, error) {
		opt := smartmem.ExperimentOptions{Parallelism: *parallel}
		if *clusterP {
			opt.ClusterParallel = experiments.ClusterParallelOn
		}
		if *memoDir != "" {
			cache, err := smartmem.OpenDirRunCache(*memoDir)
			if err != nil {
				return opt, err
			}
			opt.Cache = cache
		}
		if !*quiet {
			opt.OnProgress = func(done, total int, j smartmem.ExperimentJob) {
				fmt.Fprintf(stderr, "\r[%d/%d] %-48s", done, total, j.String())
				if done == total {
					fmt.Fprintln(stderr)
				}
			}
		}
		return opt, nil
	}
	memoStats := func(opt smartmem.ExperimentOptions) {
		if opt.Cache != nil && !*quiet {
			st := opt.Cache.Stats()
			fmt.Fprintf(stderr, "memo: %d hits, %d misses, %d writes, %d corrupt\n",
				st.Hits, st.Misses, st.Writes, st.Corrupt)
		}
	}

	if *tourney {
		slugs := splitList(*scenario)
		pols := splitList(*policiesF)
		seeds, err := parseSeeds(*seedsF)
		if err != nil {
			return fail(err)
		}
		opt, err := sweepOpts()
		if err != nil {
			return fail(err)
		}
		league, err := smartmem.RunTournament(slugs, pols, seeds, opt)
		if err != nil {
			return fail(err)
		}
		textTables := true
		write := func(path string, wr func(io.Writer, *smartmem.LeagueTable) error) error {
			if path == "" {
				return nil
			}
			w := io.Writer(stdout)
			if path == "-" {
				textTables = false
			} else {
				f, err := os.Create(path)
				if err != nil {
					return err
				}
				defer f.Close()
				w = f
			}
			return wr(w, league)
		}
		if err := write(*leagueJ, smartmem.WriteLeagueJSON); err != nil {
			return fail(err)
		}
		if err := write(*leagueC, smartmem.WriteLeagueCSV); err != nil {
			return fail(err)
		}
		if textTables {
			if err := smartmem.WriteLeagueTable(stdout, league); err != nil {
				return fail(err)
			}
		}
		memoStats(opt)
		return 0
	}

	if *times {
		// Honor -policy / -seed only when the user set them explicitly;
		// otherwise sweep the scenario's own policy list and the default
		// five seeds. The plural -policies/-seeds lists win when given.
		var policies []string
		var seeds []uint64
		fs.Visit(func(f *flag.Flag) {
			switch f.Name {
			case "policy":
				policies = []string{*policy}
			case "seed":
				seeds = []uint64{*seed}
			}
		})
		if ps := splitList(*policiesF); ps != nil {
			policies = ps
		}
		if *seedsF != "" {
			var err error
			if seeds, err = parseSeeds(*seedsF); err != nil {
				return fail(err)
			}
		}
		opt, err := sweepOpts()
		if err != nil {
			return fail(err)
		}
		tab, err := smartmem.ScenarioTimesOpts(*scenario, policies, seeds, opt)
		if err != nil {
			return fail(err)
		}
		if err := smartmem.WriteScenarioTimes(stdout, tab); err != nil {
			return fail(err)
		}
		memoStats(opt)
		return 0
	}

	// Single-run mode: execute the scenario as a Session so sinks can ride
	// the event stream. Cluster scenarios run as cluster sessions; their
	// events arrive node-tagged and VM names carry node prefixes.
	scn, err := experiments.BySlug(*scenario)
	if err != nil {
		return fail(err)
	}

	textReport := true
	var opts []smartmem.SessionOption
	var toClose []io.Closer
	attach := func(path string, mk func(io.Writer) smartmem.Sink) error {
		if path == "" {
			return nil
		}
		w := io.Writer(stdout)
		if path == "-" {
			textReport = false
		} else {
			f, err := os.Create(path)
			if err != nil {
				return err
			}
			toClose = append(toClose, f)
			w = f
		}
		opts = append(opts, smartmem.WithSink(mk(w)))
		return nil
	}
	if err := attach(*evPath, func(w io.Writer) smartmem.Sink { return sinks.NDJSON(w) }); err != nil {
		return fail(err)
	}
	if err := attach(*jsonPath, func(w io.Writer) smartmem.Sink { return sinks.JSON(w) }); err != nil {
		return fail(err)
	}
	defer func() {
		for _, c := range toClose {
			c.Close()
		}
	}()

	var sess *smartmem.Session
	if scn.IsCluster() {
		cc, err := scn.BuildCluster(*seed, *policy)
		if err != nil {
			return fail(err)
		}
		cc.Parallel = *clusterP
		sess, err = smartmem.NewClusterSession(cc, opts...)
		if err != nil {
			return fail(err)
		}
	} else {
		cfg, err := scn.Build(*seed, *policy)
		if err != nil {
			return fail(err)
		}
		sess, err = smartmem.NewSession(cfg, opts...)
		if err != nil {
			return fail(err)
		}
	}
	res, err := sess.Run()
	if err != nil {
		return fail(err)
	}
	if res.HitLimit {
		return fail(fmt.Errorf("%s/%s seed %d hit the virtual-time limit", *scenario, *policy, *seed))
	}

	if textReport {
		fmt.Fprintf(stdout, "scenario %s, policy %s, seed %d — finished at %.1f virtual seconds\n\n",
			*scenario, res.PolicyName, res.Seed, res.EndTime.Seconds())

		fmt.Fprintln(stdout, "runs:")
		for _, r := range res.Runs {
			fmt.Fprintf(stdout, "  %-4s %-16s %8.1fs  (%.1fs → %.1fs)\n",
				r.VM, r.Label, r.Duration().Seconds(), r.Start.Seconds(), r.End.Seconds())
		}

		fmt.Fprintln(stdout, "\nper-VM memory management:")
		for _, vm := range res.VMs {
			k := vm.Kernel
			fmt.Fprintf(stdout, "  %-4s touches=%d evictions=%d putsOK=%d putsFailed=%d tmemHits=%d diskR=%d diskW=%d diskWait=%.1fs\n",
				vm.Name, k.Touches, k.Evictions, k.PutsOK, k.PutsFailed, k.TmemHits,
				k.DiskReads, k.DiskWrites, k.WaitedOnDisk.Seconds())
		}
		fmt.Fprintf(stdout, "\nhost disk: %d ops, %.1fs busy; MM: %d samples, %d target batches sent\n",
			res.DiskOps, res.DiskBusy.Seconds(), res.SampleTicks, res.MMBatchesSent)

		if len(res.Nodes) > 0 {
			fmt.Fprintln(stdout, "\nper-node (remote tier = overflow shipped to the peer's store):")
			for _, n := range res.Nodes {
				line := fmt.Sprintf("  %-4s policy=%s samples=%d diskOps=%d",
					n.Name, n.PolicyName, n.SampleTicks, n.DiskOps)
				if n.Remote != nil {
					line += fmt.Sprintf(" remotePuts=%d/%d remoteHits=%d/%d remoteFlushes=%d",
						n.Remote.PutsOK, n.Remote.Puts, n.Remote.GetsHit, n.Remote.Gets,
						n.Remote.PageFlushes+n.Remote.ObjectFlushes)
				}
				fmt.Fprintln(stdout, line)
			}
		}
	}

	if *chart {
		if !textReport {
			// stdout carries a machine-readable stream; don't corrupt it.
			fmt.Fprintln(stderr, "smartmem-sim: -chart is ignored when -json/-events write to stdout")
		} else {
			fmt.Fprintln(stdout)
			if err := smartmem.WriteScenarioSeries(stdout, *scenario, *policy, *seed); err != nil {
				fmt.Fprintln(stderr, "smartmem-sim: chart:", err)
				return 1
			}
		}
	}
	if *csvPath != "" {
		f, err := os.Create(*csvPath)
		if err != nil {
			return fail(err)
		}
		defer f.Close()
		if err := res.Series.WriteCSV(f); err != nil {
			return fail(err)
		}
		confirm := stdout
		if !textReport {
			confirm = stderr
		}
		fmt.Fprintf(confirm, "series written to %s\n", *csvPath)
	}
	return 0
}

// splitList splits a comma-separated flag value, trimming spaces and
// dropping empty elements; an empty value yields nil.
func splitList(s string) []string {
	var out []string
	for _, p := range strings.Split(s, ",") {
		if p = strings.TrimSpace(p); p != "" {
			out = append(out, p)
		}
	}
	return out
}

// parseSeeds parses a comma-separated -seeds value; empty yields nil (the
// defaults).
func parseSeeds(s string) ([]uint64, error) {
	if s == "" {
		return nil, nil
	}
	var out []uint64
	for _, p := range splitList(s) {
		v, err := strconv.ParseUint(p, 10, 64)
		if err != nil {
			return nil, fmt.Errorf("bad -seeds value %q", p)
		}
		out = append(out, v)
	}
	return out, nil
}
