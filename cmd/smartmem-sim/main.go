// Command smartmem-sim runs one SmarTmem scenario under one policy and
// prints per-VM running times, memory-management statistics and,
// optionally, the tmem-usage chart and CSV series. With -times it instead
// sweeps every (policy, seed) combination of the scenario concurrently and
// prints the aggregated running-times table.
//
// Usage:
//
//	smartmem-sim -scenario s2 -policy smart-alloc:P=6 -seed 11 -chart
//	smartmem-sim -scenario usemem -policy greedy -csv series.csv
//	smartmem-sim -scenario scale-12 -times -parallel 8
package main

import (
	"flag"
	"fmt"
	"os"
	"runtime"

	"smartmem"
	"smartmem/internal/experiments"
)

func main() {
	var (
		scenario = flag.String("scenario", "s1", "scenario slug: s1, s2, usemem, s3, scale-<n>, churn")
		policy   = flag.String("policy", "greedy", `policy spec: no-tmem, greedy, static-alloc, reconf-static, smart-alloc:P=<pct>`)
		seed     = flag.Uint64("seed", 11, "random seed")
		chart    = flag.Bool("chart", false, "print the tmem-usage chart (paper Figures 4/6/8/10)")
		csvPath  = flag.String("csv", "", "write the tmem time series as CSV to this file")
		list     = flag.Bool("list", false, "list registered scenarios and exit")
		times    = flag.Bool("times", false, "sweep (policy, seed) combinations and print the times table; uses the scenario's policy list and default seeds unless -policy/-seed are given")
		parallel = flag.Int("parallel", runtime.NumCPU(), "concurrent simulation runs for -times (1 = sequential)")
		quiet    = flag.Bool("quiet", false, "suppress live progress on stderr")
	)
	flag.Parse()

	if *list {
		if err := experiments.RegistryTable().Render(os.Stdout); err != nil {
			fmt.Fprintln(os.Stderr, "smartmem-sim:", err)
			os.Exit(1)
		}
		return
	}

	if *times {
		// Honor -policy / -seed only when the user set them explicitly;
		// otherwise sweep the scenario's own policy list and the default
		// five seeds.
		var policies []string
		var seeds []uint64
		flag.Visit(func(f *flag.Flag) {
			switch f.Name {
			case "policy":
				policies = []string{*policy}
			case "seed":
				seeds = []uint64{*seed}
			}
		})
		opt := smartmem.ExperimentOptions{Parallelism: *parallel}
		if !*quiet {
			opt.OnProgress = func(done, total int, j smartmem.ExperimentJob) {
				fmt.Fprintf(os.Stderr, "\r[%d/%d] %-48s", done, total, j.String())
				if done == total {
					fmt.Fprintln(os.Stderr)
				}
			}
		}
		tab, err := smartmem.ScenarioTimesOpts(*scenario, policies, seeds, opt)
		if err != nil {
			fmt.Fprintln(os.Stderr, "smartmem-sim:", err)
			os.Exit(1)
		}
		if err := smartmem.WriteScenarioTimes(os.Stdout, tab); err != nil {
			fmt.Fprintln(os.Stderr, "smartmem-sim:", err)
			os.Exit(1)
		}
		return
	}

	res, err := smartmem.RunScenario(*scenario, *policy, *seed)
	if err != nil {
		fmt.Fprintln(os.Stderr, "smartmem-sim:", err)
		os.Exit(1)
	}

	fmt.Printf("scenario %s, policy %s, seed %d — finished at %.1f virtual seconds\n\n",
		*scenario, res.PolicyName, res.Seed, res.EndTime.Seconds())

	fmt.Println("runs:")
	for _, r := range res.Runs {
		fmt.Printf("  %-4s %-16s %8.1fs  (%.1fs → %.1fs)\n",
			r.VM, r.Label, r.Duration().Seconds(), r.Start.Seconds(), r.End.Seconds())
	}

	fmt.Println("\nper-VM memory management:")
	for _, vm := range res.VMs {
		k := vm.Kernel
		fmt.Printf("  %-4s touches=%d evictions=%d putsOK=%d putsFailed=%d tmemHits=%d diskR=%d diskW=%d diskWait=%.1fs\n",
			vm.Name, k.Touches, k.Evictions, k.PutsOK, k.PutsFailed, k.TmemHits,
			k.DiskReads, k.DiskWrites, k.WaitedOnDisk.Seconds())
	}
	fmt.Printf("\nhost disk: %d ops, %.1fs busy; MM: %d samples, %d target batches sent\n",
		res.DiskOps, res.DiskBusy.Seconds(), res.SampleTicks, res.MMBatchesSent)

	if *chart {
		fmt.Println()
		if err := smartmem.WriteScenarioSeries(os.Stdout, *scenario, *policy, *seed); err != nil {
			fmt.Fprintln(os.Stderr, "smartmem-sim: chart:", err)
			os.Exit(1)
		}
	}
	if *csvPath != "" {
		f, err := os.Create(*csvPath)
		if err != nil {
			fmt.Fprintln(os.Stderr, "smartmem-sim:", err)
			os.Exit(1)
		}
		defer f.Close()
		if err := res.Series.WriteCSV(f); err != nil {
			fmt.Fprintln(os.Stderr, "smartmem-sim:", err)
			os.Exit(1)
		}
		fmt.Printf("series written to %s\n", *csvPath)
	}
}
