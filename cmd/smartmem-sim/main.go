// Command smartmem-sim runs one SmarTmem scenario under one policy and
// prints per-VM running times, memory-management statistics and,
// optionally, the tmem-usage chart and CSV series.
//
// Usage:
//
//	smartmem-sim -scenario s2 -policy smart-alloc:P=6 -seed 11 -chart
//	smartmem-sim -scenario usemem -policy greedy -csv series.csv
package main

import (
	"flag"
	"fmt"
	"os"

	"smartmem"
)

func main() {
	var (
		scenario = flag.String("scenario", "s1", "scenario slug: s1, s2, usemem, s3")
		policy   = flag.String("policy", "greedy", `policy spec: no-tmem, greedy, static-alloc, reconf-static, smart-alloc:P=<pct>`)
		seed     = flag.Uint64("seed", 11, "random seed")
		chart    = flag.Bool("chart", false, "print the tmem-usage chart (paper Figures 4/6/8/10)")
		csvPath  = flag.String("csv", "", "write the tmem time series as CSV to this file")
		list     = flag.Bool("list", false, "list scenarios and exit")
	)
	flag.Parse()

	if *list {
		for _, s := range smartmem.Scenarios() {
			fmt.Printf("%-8s %-16s tmem=%-8s %s\n", s.Slug, s.Name, s.TmemBytes, s.Description)
		}
		return
	}

	res, err := smartmem.RunScenario(*scenario, *policy, *seed)
	if err != nil {
		fmt.Fprintln(os.Stderr, "smartmem-sim:", err)
		os.Exit(1)
	}

	fmt.Printf("scenario %s, policy %s, seed %d — finished at %.1f virtual seconds\n\n",
		*scenario, res.PolicyName, res.Seed, res.EndTime.Seconds())

	fmt.Println("runs:")
	for _, r := range res.Runs {
		fmt.Printf("  %-4s %-16s %8.1fs  (%.1fs → %.1fs)\n",
			r.VM, r.Label, r.Duration().Seconds(), r.Start.Seconds(), r.End.Seconds())
	}

	fmt.Println("\nper-VM memory management:")
	for _, vm := range res.VMs {
		k := vm.Kernel
		fmt.Printf("  %-4s touches=%d evictions=%d putsOK=%d putsFailed=%d tmemHits=%d diskR=%d diskW=%d diskWait=%.1fs\n",
			vm.Name, k.Touches, k.Evictions, k.PutsOK, k.PutsFailed, k.TmemHits,
			k.DiskReads, k.DiskWrites, k.WaitedOnDisk.Seconds())
	}
	fmt.Printf("\nhost disk: %d ops, %.1fs busy; MM: %d samples, %d target batches sent\n",
		res.DiskOps, res.DiskBusy.Seconds(), res.SampleTicks, res.MMBatchesSent)

	if *chart {
		fmt.Println()
		if err := smartmem.WriteScenarioSeries(os.Stdout, *scenario, *policy, *seed); err != nil {
			fmt.Fprintln(os.Stderr, "smartmem-sim: chart:", err)
			os.Exit(1)
		}
	}
	if *csvPath != "" {
		f, err := os.Create(*csvPath)
		if err != nil {
			fmt.Fprintln(os.Stderr, "smartmem-sim:", err)
			os.Exit(1)
		}
		defer f.Close()
		if err := res.Series.WriteCSV(f); err != nil {
			fmt.Fprintln(os.Stderr, "smartmem-sim:", err)
			os.Exit(1)
		}
		fmt.Printf("series written to %s\n", *csvPath)
	}
}
