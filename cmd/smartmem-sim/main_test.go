package main

import (
	"bytes"
	"encoding/json"
	"flag"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

var update = flag.Bool("update", false, "rewrite golden files")

// TestJSONGolden locks the -json sink wiring end-to-end: the scale-2 run
// is deterministic, so the serialized document (events + result) must be
// byte-identical run over run. Regenerate with:
//
//	go test ./cmd/smartmem-sim -args -update
func TestJSONGolden(t *testing.T) {
	var out, errb bytes.Buffer
	args := []string{"-scenario", "scale-2", "-policy", "smart-alloc:P=2", "-seed", "11", "-json", "-"}
	if code := realMain(args, &out, &errb); code != 0 {
		t.Fatalf("exit code %d, stderr: %s", code, errb.String())
	}

	// Structural sanity before the byte comparison, so a schema change
	// fails with a readable message.
	var doc struct {
		Schema string           `json:"schema"`
		Events []map[string]any `json:"events"`
		Result map[string]any   `json:"result"`
	}
	if err := json.Unmarshal(out.Bytes(), &doc); err != nil {
		t.Fatalf("output is not valid JSON: %v", err)
	}
	if doc.Schema != "smartmem/run@1" {
		t.Errorf("schema = %q", doc.Schema)
	}
	kinds := map[string]bool{}
	for _, e := range doc.Events {
		kind, _ := e["event"].(string)
		kinds[kind] = true
	}
	for _, want := range []string{"vm-started", "milestone", "run-completed", "sample-tick", "target-update", "run-finished"} {
		if !kinds[want] {
			t.Errorf("event stream missing kind %q (got %v)", want, kinds)
		}
	}
	if doc.Result == nil || doc.Result["policy"] != "smart-alloc(P=2%)" {
		t.Errorf("result = %v", doc.Result)
	}

	golden := filepath.Join("testdata", "scale2_smart_alloc_seed11.json.golden")
	if *update {
		if err := os.MkdirAll(filepath.Dir(golden), 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(golden, out.Bytes(), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	want, err := os.ReadFile(golden)
	if err != nil {
		t.Fatalf("read golden (rerun with -args -update to create): %v", err)
	}
	if !bytes.Equal(out.Bytes(), want) {
		t.Errorf("-json output drifted from golden (%d bytes vs %d); rerun with -args -update if intended",
			out.Len(), len(want))
	}
}

// TestEventsNDJSON checks the -events sink: one valid JSON object per
// line, ending with the result record.
func TestEventsNDJSON(t *testing.T) {
	var out, errb bytes.Buffer
	args := []string{"-scenario", "scale-2", "-policy", "greedy", "-seed", "11", "-events", "-"}
	if code := realMain(args, &out, &errb); code != 0 {
		t.Fatalf("exit code %d, stderr: %s", code, errb.String())
	}
	lines := strings.Split(strings.TrimRight(out.String(), "\n"), "\n")
	if len(lines) < 10 {
		t.Fatalf("only %d NDJSON lines", len(lines))
	}
	for i, line := range lines {
		var m map[string]any
		if err := json.Unmarshal([]byte(line), &m); err != nil {
			t.Fatalf("line %d is not JSON: %v", i+1, err)
		}
		if i == len(lines)-1 {
			if m["record"] != "result" {
				t.Errorf("last line is not the result record: %s", line)
			}
		} else if m["event"] == "" {
			t.Errorf("line %d has no event kind: %s", i+1, line)
		}
	}
}

// TestTimesModeStillWorks guards the sweep path against the Session
// refactor.
func TestTimesModeStillWorks(t *testing.T) {
	var out, errb bytes.Buffer
	args := []string{"-scenario", "scale-2", "-policy", "greedy", "-seed", "11", "-times", "-quiet"}
	if code := realMain(args, &out, &errb); code != 0 {
		t.Fatalf("exit code %d, stderr: %s", code, errb.String())
	}
	if !strings.Contains(out.String(), "greedy") {
		t.Errorf("times table missing policy column:\n%s", out.String())
	}
}

// TestClusterJSONGolden locks the cluster runtime end-to-end: the 2-node
// cluster-2 scenario is deterministic under the experiments engine, so its
// serialized document (node-tagged events + merged result with per-node
// summaries) must be byte-identical run over run. Regenerate with:
//
//	go test ./cmd/smartmem-sim -args -update
func TestClusterJSONGolden(t *testing.T) {
	var out, errb bytes.Buffer
	args := []string{"-scenario", "cluster-2", "-policy", "smart-alloc:P=2", "-seed", "11", "-json", "-"}
	if code := realMain(args, &out, &errb); code != 0 {
		t.Fatalf("exit code %d, stderr: %s", code, errb.String())
	}

	var doc struct {
		Schema string           `json:"schema"`
		Events []map[string]any `json:"events"`
		Result map[string]any   `json:"result"`
	}
	if err := json.Unmarshal(out.Bytes(), &doc); err != nil {
		t.Fatalf("output is not valid JSON: %v", err)
	}
	nodes := map[string]bool{}
	for _, e := range doc.Events {
		if n, _ := e["node"].(string); n != "" {
			nodes[n] = true
		}
	}
	if !nodes["n0"] || !nodes["n1"] {
		t.Errorf("events lack node tags: %v", nodes)
	}
	if doc.Result["nodes"] == nil {
		t.Error("result lacks per-node summaries")
	}

	golden := filepath.Join("testdata", "cluster2_smart_alloc_seed11.json.golden")
	if *update {
		if err := os.MkdirAll(filepath.Dir(golden), 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(golden, out.Bytes(), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	want, err := os.ReadFile(golden)
	if err != nil {
		t.Fatalf("read golden (rerun with -args -update to create): %v", err)
	}
	if !bytes.Equal(out.Bytes(), want) {
		t.Errorf("-json output drifted from golden (%d bytes vs %d); rerun with -args -update if intended",
			out.Len(), len(want))
	}
}

// TestMemoryPressureJSONGolden locks the compressed-tier plumbing
// end-to-end: the memory-pressure run is deterministic (the tier's codec
// timing counters stay zero on the simulator's nil page data and are
// excluded from the document anyway), so its serialized form — including
// the effective_tmem sample fields and the compressed_tier result block —
// must be byte-identical run over run. Regenerate with:
//
//	go test ./cmd/smartmem-sim -args -update
func TestMemoryPressureJSONGolden(t *testing.T) {
	var out, errb bytes.Buffer
	args := []string{"-scenario", "memory-pressure", "-policy", "smart-alloc:P=2", "-seed", "11", "-json", "-"}
	if code := realMain(args, &out, &errb); code != 0 {
		t.Fatalf("exit code %d, stderr: %s", code, errb.String())
	}

	var doc struct {
		Schema string           `json:"schema"`
		Events []map[string]any `json:"events"`
		Result map[string]any   `json:"result"`
	}
	if err := json.Unmarshal(out.Bytes(), &doc); err != nil {
		t.Fatalf("output is not valid JSON: %v", err)
	}
	ct, _ := doc.Result["compressed_tier"].(map[string]any)
	if ct == nil {
		t.Fatal("result lacks the compressed_tier block")
	}
	if ratio, _ := ct["ratio"].(float64); ratio < 2 {
		t.Errorf("serialized compression ratio = %v, want >= 2", ct["ratio"])
	}
	effSeen := false
	for _, e := range doc.Events {
		if e["event"] == "sample-tick" && e["effective_tmem"] != nil {
			effSeen = true
			break
		}
	}
	if !effSeen {
		t.Error("no sample-tick carried effective_tmem")
	}

	golden := filepath.Join("testdata", "memory_pressure_smart_alloc_seed11.json.golden")
	if *update {
		if err := os.MkdirAll(filepath.Dir(golden), 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(golden, out.Bytes(), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	want, err := os.ReadFile(golden)
	if err != nil {
		t.Fatalf("read golden (rerun with -args -update to create): %v", err)
	}
	if !bytes.Equal(out.Bytes(), want) {
		t.Errorf("-json output drifted from golden (%d bytes vs %d); rerun with -args -update if intended",
			out.Len(), len(want))
	}
}

// TestDiurnalJSONGolden locks one production-shaped scenario end-to-end:
// the diurnal-wave run is deterministic (its waveform table is hardcoded,
// not computed via math.Cos), so the serialized document must be
// byte-identical run over run. Regenerate with:
//
//	go test ./cmd/smartmem-sim -args -update
func TestDiurnalJSONGolden(t *testing.T) {
	var out, errb bytes.Buffer
	args := []string{"-scenario", "diurnal", "-policy", "smart-alloc:P=2", "-seed", "11", "-json", "-"}
	if code := realMain(args, &out, &errb); code != 0 {
		t.Fatalf("exit code %d, stderr: %s", code, errb.String())
	}

	var doc struct {
		Schema string           `json:"schema"`
		Events []map[string]any `json:"events"`
		Result map[string]any   `json:"result"`
	}
	if err := json.Unmarshal(out.Bytes(), &doc); err != nil {
		t.Fatalf("output is not valid JSON: %v", err)
	}
	crests := 0
	for _, e := range doc.Events {
		if e["event"] == "milestone" {
			if label, _ := e["label"].(string); strings.HasPrefix(label, "wave-crest-") {
				crests++
			}
		}
	}
	if crests != 6 { // 3 VMs × 2 cycles
		t.Errorf("saw %d wave-crest milestones, want 6", crests)
	}

	golden := filepath.Join("testdata", "diurnal_smart_alloc_seed11.json.golden")
	if *update {
		if err := os.MkdirAll(filepath.Dir(golden), 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(golden, out.Bytes(), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	want, err := os.ReadFile(golden)
	if err != nil {
		t.Fatalf("read golden (rerun with -args -update to create): %v", err)
	}
	if !bytes.Equal(out.Bytes(), want) {
		t.Errorf("-json output drifted from golden (%d bytes vs %d); rerun with -args -update if intended",
			out.Len(), len(want))
	}
}

// TestTournamentWarmCache runs the same tournament twice against one memo
// directory: the second (warm) pass must serve every cell from the cache
// and produce a byte-identical league document — the CLI-level version of
// the engine's cache-integrity guarantee.
func TestTournamentWarmCache(t *testing.T) {
	memo := t.TempDir()
	run := func() []byte {
		var out, errb bytes.Buffer
		args := []string{"-tournament", "-scenario", "scale-2",
			"-policies", "greedy,smart-alloc:P=2", "-seeds", "11,23",
			"-memo", memo, "-league-json", "-", "-quiet"}
		if code := realMain(args, &out, &errb); code != 0 {
			t.Fatalf("exit code %d, stderr: %s", code, errb.String())
		}
		return out.Bytes()
	}
	cold := run()
	warm := run()
	if !bytes.Equal(cold, warm) {
		t.Errorf("warm league JSON differs from cold:\ncold:\n%s\nwarm:\n%s", cold, warm)
	}

	var doc struct {
		Schema string `json:"schema"`
		League struct {
			Overall []map[string]any `json:"overall"`
		} `json:"league"`
	}
	if err := json.Unmarshal(cold, &doc); err != nil {
		t.Fatalf("league output is not valid JSON: %v", err)
	}
	if doc.Schema != "smartmem/league@1" {
		t.Errorf("schema = %q", doc.Schema)
	}
	if len(doc.League.Overall) != 2 {
		t.Errorf("overall league has %d entries, want 2", len(doc.League.Overall))
	}
}

// TestListPolicies guards the policy-registry listing flag.
func TestListPolicies(t *testing.T) {
	var out, errb bytes.Buffer
	if code := realMain([]string{"-list-policies"}, &out, &errb); code != 0 {
		t.Fatalf("exit code %d, stderr: %s", code, errb.String())
	}
	for _, want := range []string{"no-tmem", "greedy", "smart-alloc:P=<pct>"} {
		if !strings.Contains(out.String(), want) {
			t.Errorf("-list-policies output missing %q:\n%s", want, out.String())
		}
	}
}

// TestProfileFlags checks that -cpuprofile/-memprofile write usable files.
func TestProfileFlags(t *testing.T) {
	dir := t.TempDir()
	cpu, heap := filepath.Join(dir, "cpu.prof"), filepath.Join(dir, "mem.prof")
	var out, errb bytes.Buffer
	args := []string{"-scenario", "scale-2", "-policy", "greedy", "-seed", "11",
		"-cpuprofile", cpu, "-memprofile", heap}
	if code := realMain(args, &out, &errb); code != 0 {
		t.Fatalf("exit code %d, stderr: %s", code, errb.String())
	}
	for _, p := range []string{cpu, heap} {
		fi, err := os.Stat(p)
		if err != nil {
			t.Fatalf("profile not written: %v", err)
		}
		if fi.Size() == 0 {
			t.Errorf("profile %s is empty", p)
		}
	}
}
