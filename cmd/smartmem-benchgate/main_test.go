package main

import (
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"
)

func writeFile(t *testing.T, name, content string) string {
	t.Helper()
	path := filepath.Join(t.TempDir(), name)
	if err := os.WriteFile(path, []byte(content), 0o644); err != nil {
		t.Fatal(err)
	}
	return path
}

func benchLine(name string, ns, allocs float64) string {
	return fmt.Sprintf(`{"name":%q,"iterations":100,"metrics":{"ns/op":%g,"allocs/op":%g}}`,
		name, ns, allocs)
}

func benchFile(t *testing.T, fname string, lines ...string) string {
	return writeFile(t, fname, `{"benchmarks":[`+strings.Join(lines, ",")+`]}`)
}

func TestGateBenchBudgets(t *testing.T) {
	base := benchFile(t, "base.json",
		benchLine("BenchmarkFast", 1000, 2),
		benchLine("BenchmarkNoisy/case-1", 1000, 0),
		benchLine("BenchmarkRemoved", 500, 0),
	)
	cur := benchFile(t, "cur.json",
		benchLine("BenchmarkFast", 1050, 2),         // +5%: inside the 10% default
		benchLine("BenchmarkNoisy/case-1", 1400, 0), // +40%: inside its 50% override
		benchLine("BenchmarkNew", 10, 0),
	)
	budgets := budgetTable{prefixes: map[string]float64{"BenchmarkNoisy": 0.50}, def: 0.10}

	var out strings.Builder
	fails, err := gateBench(&out, cur, base, budgets)
	if err != nil {
		t.Fatalf("gateBench: %v", err)
	}
	if fails != 0 {
		t.Fatalf("fails = %d, want 0\n%s", fails, out.String())
	}
	for _, want := range []string{"gone  BenchmarkRemoved", "new   BenchmarkNew"} {
		if !strings.Contains(out.String(), want) {
			t.Errorf("report missing %q:\n%s", want, out.String())
		}
	}

	// Push BenchmarkFast past 10%: one ns/op violation.
	cur = benchFile(t, "cur2.json",
		benchLine("BenchmarkFast", 1200, 2),
		benchLine("BenchmarkNoisy/case-1", 1000, 0),
	)
	out.Reset()
	fails, err = gateBench(&out, cur, base, budgets)
	if err != nil || fails != 1 {
		t.Fatalf("fails = %d (err %v), want 1\n%s", fails, err, out.String())
	}
	if !strings.Contains(out.String(), "FAIL  BenchmarkFast") {
		t.Errorf("no FAIL line for BenchmarkFast:\n%s", out.String())
	}
}

func TestGateBenchAllocsAbsolute(t *testing.T) {
	base := benchFile(t, "base.json", benchLine("BenchmarkHot", 100, 0))
	budgets := budgetTable{def: 0.10}

	// 0 -> 1 alloc rides the +1 slack; 0 -> 2 fails even though the
	// relative budget would never trip on a 0 baseline.
	var out strings.Builder
	fails, err := gateBench(&out, benchFile(t, "ok.json", benchLine("BenchmarkHot", 100, 1)), base, budgets)
	if err != nil || fails != 0 {
		t.Fatalf("+1 alloc: fails = %d (err %v)\n%s", fails, err, out.String())
	}
	out.Reset()
	fails, err = gateBench(&out, benchFile(t, "bad.json", benchLine("BenchmarkHot", 100, 2)), base, budgets)
	if err != nil || fails != 1 {
		t.Fatalf("+2 allocs: fails = %d (err %v), want 1\n%s", fails, err, out.String())
	}
}

func TestGateBenchQuantileMetrics(t *testing.T) {
	mk := func(fname string, p99 float64) string {
		return writeFile(t, fname, fmt.Sprintf(
			`{"benchmarks":[{"name":"BenchmarkLoadgen/op=all/conns=4","iterations":5000,"metrics":{"p50-ns":600000,"p99-ns":%g,"ops/s":2000}}]}`, p99))
	}
	budgets := budgetTable{def: 0.10}
	var out strings.Builder
	fails, err := gateBench(&out, mk("ok.json", 1_050_000), mk("base.json", 1_000_000), budgets)
	if err != nil || fails != 0 {
		t.Fatalf("within budget: fails = %d (err %v)\n%s", fails, err, out.String())
	}
	out.Reset()
	fails, err = gateBench(&out, mk("bad.json", 1_500_000), mk("base2.json", 1_000_000), budgets)
	if err != nil || fails != 1 {
		t.Fatalf("p99 regression: fails = %d (err %v), want 1\n%s", fails, err, out.String())
	}
}

func TestLoadBudgetsAndLookup(t *testing.T) {
	path := writeFile(t, "budgets.txt", `
# macro benches are noisy on shared runners
BenchmarkEngine 0.60
BenchmarkEngine_TimesSweep 0.90
BenchmarkLoadgen 0.75
`)
	tab, err := loadBudgets(path, 0.10)
	if err != nil {
		t.Fatalf("loadBudgets: %v", err)
	}
	for name, want := range map[string]float64{
		"BenchmarkEngine_ScaleScenario/vms-4":   0.60,
		"BenchmarkEngine_TimesSweep/parallel-1": 0.90, // longest prefix wins
		"BenchmarkLoadgen/op=all/conns=4":       0.75,
		"BenchmarkHDRRecord/serial":             0.10, // default
	} {
		if got := tab.lookup(name); got != want {
			t.Errorf("lookup(%s) = %g, want %g", name, got, want)
		}
	}
	if _, err := loadBudgets(writeFile(t, "bad.txt", "BenchmarkX not-a-number\n"), 0.1); err == nil {
		t.Error("bad budget line: want error")
	}
}

func TestGateLoad(t *testing.T) {
	report := func(fname string, rate float64, errors int64, p99 int64) string {
		return writeFile(t, fname, fmt.Sprintf(`{"loadgen":{
			"achieved_rate":%g,"sent":4000,"completed":4000,"errors":%d,
			"ops":{"all":{"count":4000,"p50_ns":700000,"p99_ns":%d}}}}`,
			rate, errors, p99))
	}
	var out strings.Builder
	fails, err := gateLoad(&out, report("ok.json", 1990, 0, 2_000_000), 1500, 50*time.Millisecond)
	if err != nil || fails != 0 {
		t.Fatalf("healthy report: fails = %d (err %v)\n%s", fails, err, out.String())
	}

	for _, tc := range []struct {
		name string
		path string
	}{
		{"slow", report("slow.json", 900, 0, 2_000_000)},
		{"errors", report("errors.json", 1990, 3, 2_000_000)},
		{"p99", report("p99.json", 1990, 0, int64(80*time.Millisecond))},
	} {
		out.Reset()
		fails, err := gateLoad(&out, tc.path, 1500, 50*time.Millisecond)
		if err != nil || fails == 0 {
			t.Errorf("%s: fails = %d (err %v), want >= 1\n%s", tc.name, fails, err, out.String())
		}
	}
}
