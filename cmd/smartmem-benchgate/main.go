// Command smartmem-benchgate turns the repo's benchmark snapshots into a
// CI gate. It has two modes:
//
// Bench mode compares a fresh BENCH.json (cmd/smartmem-benchjson output)
// against the committed baseline and fails when a benchmark regresses past
// its budget:
//
//	smartmem-benchgate -current bench-out/BENCH.json -baseline BENCH.json \
//	    -budgets bench-budgets.txt -default-budget 0.10
//
// Lower-is-better metrics (ns/op, p50-ns, p99-ns, p999-ns) fail when
// current > baseline*(1+budget); higher-is-better ops/s fails when
// current < baseline*(1-budget); allocs/op is gated absolutely (baseline+1
// — allocation counts are deterministic, so even one new allocation on a
// hot path is a real change, while the ratio test would wave through
// 0 -> 1). Budgets come from a "name-prefix fraction" file, longest prefix
// wins, so noisy macro benchmarks can carry wider budgets than
// deterministic micro benchmarks. Benchmarks only in the baseline are
// reported but do not fail the gate (renames happen); benchmarks only in
// the current run are reported as new.
//
// Load mode holds a loadgen JSON report (cmd/smartmem-loadgen -json)
// against serving SLOs:
//
//	smartmem-benchgate -load load.json -min-rate 2000 -max-p99 50ms
//
// and fails on transport errors, achieved rate under -min-rate, or an
// overall p99 above -max-p99.
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"sort"
	"strconv"
	"strings"
	"time"
)

func main() {
	var (
		current   = flag.String("current", "", "fresh BENCH.json to judge")
		baseline  = flag.String("baseline", "BENCH.json", "committed baseline BENCH.json")
		budgets   = flag.String("budgets", "", "per-benchmark budget overrides (name-prefix fraction per line)")
		defBudget = flag.Float64("default-budget", 0.10, "relative regression budget when no override matches")
		loadRep   = flag.String("load", "", "loadgen JSON report to hold against -min-rate/-max-p99")
		minRate   = flag.Float64("min-rate", 0, "minimum achieved op rate for -load")
		maxP99    = flag.Duration("max-p99", 0, "ceiling for the overall p99 latency for -load")
	)
	flag.Parse()

	switch {
	case *loadRep != "":
		fails, err := gateLoad(os.Stdout, *loadRep, *minRate, *maxP99)
		exit(fails, err)
	case *current != "":
		over, err := loadBudgets(*budgets, *defBudget)
		if err != nil {
			exit(0, err)
		}
		fails, err := gateBench(os.Stdout, *current, *baseline, over)
		exit(fails, err)
	default:
		fmt.Fprintln(os.Stderr, "smartmem-benchgate: -current or -load is required")
		os.Exit(2)
	}
}

func exit(fails int, err error) {
	if err != nil {
		fmt.Fprintln(os.Stderr, "smartmem-benchgate:", err)
		os.Exit(2)
	}
	if fails > 0 {
		fmt.Printf("FAIL: %d budget violation(s)\n", fails)
		os.Exit(1)
	}
	fmt.Println("PASS")
}

// benchDoc mirrors cmd/smartmem-benchjson output.
type benchDoc struct {
	Benchmarks []struct {
		Name    string             `json:"name"`
		Metrics map[string]float64 `json:"metrics"`
	} `json:"benchmarks"`
}

func readBench(path string) (map[string]map[string]float64, error) {
	raw, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var doc benchDoc
	if err := json.Unmarshal(raw, &doc); err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	out := make(map[string]map[string]float64, len(doc.Benchmarks))
	for _, b := range doc.Benchmarks {
		out[b.Name] = b.Metrics
	}
	return out, nil
}

// budgetTable resolves a benchmark name to its relative budget by longest
// matching prefix, falling back to the default.
type budgetTable struct {
	prefixes map[string]float64
	def      float64
}

func (t budgetTable) lookup(name string) float64 {
	best, budget := -1, t.def
	for p, b := range t.prefixes {
		if len(p) > best && strings.HasPrefix(name, p) {
			best, budget = len(p), b
		}
	}
	return budget
}

// loadBudgets parses the override file: one "name-prefix fraction" pair
// per line, '#' comments, blank lines ignored.
func loadBudgets(path string, def float64) (budgetTable, error) {
	t := budgetTable{prefixes: map[string]float64{}, def: def}
	if path == "" {
		return t, nil
	}
	f, err := os.Open(path)
	if err != nil {
		return t, err
	}
	defer f.Close()
	sc := bufio.NewScanner(f)
	for line := 1; sc.Scan(); line++ {
		text := strings.TrimSpace(sc.Text())
		if text == "" || strings.HasPrefix(text, "#") {
			continue
		}
		fields := strings.Fields(text)
		if len(fields) != 2 {
			return t, fmt.Errorf("%s:%d: want \"name-prefix fraction\", got %q", path, line, text)
		}
		frac, err := strconv.ParseFloat(fields[1], 64)
		if err != nil || frac < 0 {
			return t, fmt.Errorf("%s:%d: bad budget %q", path, line, fields[1])
		}
		t.prefixes[fields[0]] = frac
	}
	return t, sc.Err()
}

// gated metrics where smaller is better, in report order.
var lowerBetter = []string{"ns/op", "p50-ns", "p99-ns", "p999-ns"}

// gateBench judges current against base and returns the violation count.
func gateBench(w io.Writer, currentPath, basePath string, budgets budgetTable) (int, error) {
	cur, err := readBench(currentPath)
	if err != nil {
		return 0, err
	}
	base, err := readBench(basePath)
	if err != nil {
		return 0, err
	}

	names := make([]string, 0, len(base))
	for name := range base {
		names = append(names, name)
	}
	sort.Strings(names)

	fails := 0
	for _, name := range names {
		bm, cm := base[name], cur[name]
		if cm == nil {
			fmt.Fprintf(w, "gone  %-60s (in baseline, not in current run)\n", name)
			continue
		}
		budget := budgets.lookup(name)
		for _, metric := range lowerBetter {
			bv, okB := bm[metric]
			cv, okC := cm[metric]
			if !okB || !okC || bv <= 0 {
				continue
			}
			limit := bv * (1 + budget)
			verdict := "ok   "
			if cv > limit {
				verdict = "FAIL "
				fails++
			}
			fmt.Fprintf(w, "%s %-60s %-8s %12.0f -> %12.0f (budget +%.0f%%, limit %.0f)\n",
				verdict, name, metric, bv, cv, budget*100, limit)
		}
		if bv, ok := bm["ops/s"]; ok && bv > 0 {
			if cv, ok := cm["ops/s"]; ok {
				limit := bv * (1 - budget)
				verdict := "ok   "
				if cv < limit {
					verdict = "FAIL "
					fails++
				}
				fmt.Fprintf(w, "%s %-60s %-8s %12.0f -> %12.0f (budget -%.0f%%, floor %.0f)\n",
					verdict, name, "ops/s", bv, cv, budget*100, limit)
			}
		}
		if bv, ok := bm["allocs/op"]; ok {
			if cv, ok := cm["allocs/op"]; ok {
				limit := bv + 1
				verdict := "ok   "
				if cv > limit {
					verdict = "FAIL "
					fails++
				}
				fmt.Fprintf(w, "%s %-60s %-8s %12.0f -> %12.0f (limit %.0f, absolute)\n",
					verdict, name, "allocs", bv, cv, limit)
			}
		}
	}
	for name := range cur {
		if base[name] == nil {
			fmt.Fprintf(w, "new   %-60s (no baseline yet)\n", name)
		}
	}
	return fails, nil
}

// loadReport mirrors the cmd/smartmem-loadgen -json document.
type loadReport struct {
	Loadgen struct {
		AchievedRate float64 `json:"achieved_rate"`
		Sent         int64   `json:"sent"`
		Completed    int64   `json:"completed"`
		Errors       int64   `json:"errors"`
		Ops          map[string]struct {
			Count int64 `json:"count"`
			P50   int64 `json:"p50_ns"`
			P99   int64 `json:"p99_ns"`
		} `json:"ops"`
	} `json:"loadgen"`
}

// gateLoad holds a loadgen report against the serving SLOs.
func gateLoad(w io.Writer, path string, minRate float64, maxP99 time.Duration) (int, error) {
	raw, err := os.ReadFile(path)
	if err != nil {
		return 0, err
	}
	var rep loadReport
	if err := json.Unmarshal(raw, &rep); err != nil {
		return 0, fmt.Errorf("%s: %w", path, err)
	}
	lg := rep.Loadgen
	if lg.Sent == 0 {
		return 0, fmt.Errorf("%s: empty report (sent 0 ops)", path)
	}
	all, ok := lg.Ops["all"]
	if !ok {
		return 0, fmt.Errorf("%s: no \"all\" histogram", path)
	}

	fails := 0
	check := func(failed bool, format string, args ...any) {
		verdict := "ok   "
		if failed {
			verdict = "FAIL "
			fails++
		}
		fmt.Fprintf(w, "%s %s\n", verdict, fmt.Sprintf(format, args...))
	}
	check(lg.Errors != 0, "transport errors: %d (want 0)", lg.Errors)
	check(lg.Completed != lg.Sent, "completed %d of %d sent", lg.Completed, lg.Sent)
	if minRate > 0 {
		check(lg.AchievedRate < minRate, "achieved %.0f op/s (floor %.0f)", lg.AchievedRate, minRate)
	}
	if maxP99 > 0 {
		check(all.P99 > int64(maxP99), "p99 %v (ceiling %v, p50 %v)",
			time.Duration(all.P99), maxP99, time.Duration(all.P50))
	}
	return fails, nil
}
