// Command smartmem-benchjson converts `go test -bench` text output (read
// from stdin or the files given as arguments) into machine-readable JSON,
// one record per benchmark result line. `make bench-json` uses it to write
// BENCH.json, the perf-trajectory snapshot CI archives next to the raw
// bench output.
//
// Output shape:
//
//	{
//	  "benchmarks": [
//	    {"name": "BenchmarkKernelPingPong", "iterations": 45916718,
//	     "metrics": {"ns/op": 58.5, "B/op": 32, "allocs/op": 1}},
//	    ...
//	  ]
//	}
package main

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"
	"os"
	"strconv"
	"strings"
)

// Result is one benchmark line.
type Result struct {
	Name       string             `json:"name"`
	Iterations int64              `json:"iterations"`
	Metrics    map[string]float64 `json:"metrics"`
}

// Report is the BENCH.json document.
type Report struct {
	Benchmarks []Result `json:"benchmarks"`
}

// parseLine decodes one `BenchmarkX  N  v1 unit1  v2 unit2 ...` line.
func parseLine(line string) (Result, bool) {
	if !strings.HasPrefix(line, "Benchmark") {
		return Result{}, false
	}
	fields := strings.Fields(line)
	if len(fields) < 4 {
		return Result{}, false
	}
	iters, err := strconv.ParseInt(fields[1], 10, 64)
	if err != nil {
		return Result{}, false
	}
	r := Result{Name: fields[0], Iterations: iters, Metrics: map[string]float64{}}
	for i := 2; i+1 < len(fields); i += 2 {
		v, err := strconv.ParseFloat(fields[i], 64)
		if err != nil {
			return Result{}, false
		}
		r.Metrics[fields[i+1]] = v
	}
	return r, true
}

func parse(rd io.Reader, rep *Report) error {
	sc := bufio.NewScanner(rd)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	for sc.Scan() {
		if r, ok := parseLine(strings.TrimSpace(sc.Text())); ok {
			rep.Benchmarks = append(rep.Benchmarks, r)
		}
	}
	return sc.Err()
}

func run(args []string, in io.Reader, out io.Writer) error {
	var rep Report
	if len(args) == 0 {
		if err := parse(in, &rep); err != nil {
			return err
		}
	}
	for _, path := range args {
		f, err := os.Open(path)
		if err != nil {
			return err
		}
		err = parse(f, &rep)
		f.Close()
		if err != nil {
			return err
		}
	}
	enc := json.NewEncoder(out)
	enc.SetIndent("", "  ")
	return enc.Encode(rep)
}

func main() {
	if err := run(os.Args[1:], os.Stdin, os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "smartmem-benchjson:", err)
		os.Exit(1)
	}
}
