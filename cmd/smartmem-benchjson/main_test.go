package main

import (
	"bytes"
	"encoding/json"
	"strings"
	"testing"
)

const sample = `goos: linux
goarch: amd64
pkg: smartmem/internal/sim
BenchmarkKernelPingPong 	45916718	        58.50 ns/op	      32 B/op	       1 allocs/op
BenchmarkRemoteTier/remote-batch-4     	    2000	      4016 ns/op	         0.2181 round-trips/op
PASS
ok  	smartmem/internal/sim	8.057s
`

func TestParseBenchOutput(t *testing.T) {
	var out bytes.Buffer
	if err := run(nil, strings.NewReader(sample), &out); err != nil {
		t.Fatal(err)
	}
	var rep Report
	if err := json.Unmarshal(out.Bytes(), &rep); err != nil {
		t.Fatal(err)
	}
	if len(rep.Benchmarks) != 2 {
		t.Fatalf("parsed %d benchmarks, want 2", len(rep.Benchmarks))
	}
	b0 := rep.Benchmarks[0]
	if b0.Name != "BenchmarkKernelPingPong" || b0.Iterations != 45916718 {
		t.Errorf("first record = %+v", b0)
	}
	if b0.Metrics["ns/op"] != 58.5 || b0.Metrics["allocs/op"] != 1 {
		t.Errorf("metrics = %v", b0.Metrics)
	}
	b1 := rep.Benchmarks[1]
	if b1.Name != "BenchmarkRemoteTier/remote-batch-4" || b1.Metrics["round-trips/op"] != 0.2181 {
		t.Errorf("second record = %+v", b1)
	}
}

func TestNonBenchLinesIgnored(t *testing.T) {
	var out bytes.Buffer
	if err := run(nil, strings.NewReader("PASS\nok x 1s\n"), &out); err != nil {
		t.Fatal(err)
	}
	var rep Report
	if err := json.Unmarshal(out.Bytes(), &rep); err != nil {
		t.Fatal(err)
	}
	if len(rep.Benchmarks) != 0 {
		t.Errorf("parsed %d benchmarks from non-bench input", len(rep.Benchmarks))
	}
}
