package main

import (
	"fmt"
	"net/http"
	"sort"
	"strings"
	"sync"
	"time"

	"smartmem/internal/hdr"
	"smartmem/internal/kvstore"
	"smartmem/internal/tmem"
)

// promHandler renders the daemon's live counters in the Prometheus text
// exposition format on /metrics, next to the expvar JSON the -debug server
// already serves. Everything is read with atomic loads at scrape time —
// the wire latency summaries come straight out of the kvstore.Metrics hdr
// histograms, so a scrape never touches a lock the serving path holds.
//
// Besides the cumulative summaries, the handler remembers each op
// histogram's State from the previous scrape and diffs it against the
// current one, exposing interval families (request rate and latency
// quantiles over just the scrape-to-scrape window). Cumulative quantiles
// flatten toward the long-run mix within minutes of uptime; the interval
// view is what a dashboard actually wants to alert on.
func promHandler(node kvNode, m *kvstore.Metrics) http.Handler {
	return promHandlerClock(node, m, time.Now)
}

// promHandlerClock is promHandler with an injectable wall clock (tests pin
// the scrape interval with it).
func promHandlerClock(node kvNode, m *kvstore.Metrics, now func() time.Time) http.Handler {
	st := &intervalState{now: now}
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		var b strings.Builder
		writeWireMetrics(&b, m)
		writeIntervalMetrics(&b, m, st)
		writeStoreMetrics(&b, node)
		_, _ = w.Write([]byte(b.String()))
	})
}

// intervalState carries one scrape's histogram States to the next. The
// mutex only serializes concurrent scrapers against each other — the
// serving path never touches it.
type intervalState struct {
	mu   sync.Mutex
	now  func() time.Time
	last time.Time
	prev map[byte]hdr.State // op → State; nil until the first scrape completes
}

// writeIntervalMetrics emits the scrape-to-scrape families: per-op request
// rate and interval latency quantiles, derived by diffing the op
// histograms' States against the previous scrape. The first scrape has no
// baseline and emits nothing (it only seeds the States); ops quiet over
// the whole interval are omitted.
func writeIntervalMetrics(b *strings.Builder, m *kvstore.Metrics, st *intervalState) {
	if m == nil {
		return
	}
	st.mu.Lock()
	defer st.mu.Unlock()

	now := st.now()
	cur := make(map[byte]hdr.State)
	for _, op := range kvstore.Ops() {
		if h := m.OpHistogram(op); h != nil {
			cur[op] = h.State()
		}
	}
	prev, last := st.prev, st.last
	st.prev, st.last = cur, now
	if prev == nil {
		return
	}
	elapsed := now.Sub(last).Seconds()
	if elapsed <= 0 {
		return
	}

	type opDelta struct {
		name string
		d    hdr.Snapshot
	}
	var deltas []opDelta
	for _, op := range kvstore.Ops() {
		c, ok := cur[op]
		if !ok {
			continue
		}
		// An op first seen this interval diffs against the zero State,
		// which correctly attributes all of its activity to the interval.
		if d := hdr.DeltaSnapshot(c, prev[op]); d.Count > 0 {
			deltas = append(deltas, opDelta{kvstore.OpName(op), d})
		}
	}
	if len(deltas) == 0 {
		return
	}

	fmt.Fprintf(b, "# HELP smartmem_op_interval_rate Requests per second over the last scrape interval, by op.\n")
	fmt.Fprintf(b, "# TYPE smartmem_op_interval_rate gauge\n")
	for _, od := range deltas {
		fmt.Fprintf(b, "smartmem_op_interval_rate{op=%q} %g\n", od.name, float64(od.d.Count)/elapsed)
	}
	fmt.Fprintf(b, "# HELP smartmem_op_interval_latency_seconds Wire request latency over the last scrape interval, by op.\n")
	fmt.Fprintf(b, "# TYPE smartmem_op_interval_latency_seconds summary\n")
	for _, od := range deltas {
		for _, pq := range promQuantiles {
			var v int64
			switch pq.q {
			case 0.50:
				v = od.d.P50
			case 0.90:
				v = od.d.P90
			case 0.99:
				v = od.d.P99
			default:
				v = od.d.P999
			}
			fmt.Fprintf(b, "smartmem_op_interval_latency_seconds{op=%q,quantile=%q} %g\n",
				od.name, pq.label, float64(v)/1e9)
		}
		fmt.Fprintf(b, "smartmem_op_interval_latency_seconds_sum{op=%q} %g\n",
			od.name, od.d.Mean*float64(od.d.Count)/1e9)
		fmt.Fprintf(b, "smartmem_op_interval_latency_seconds_count{op=%q} %d\n", od.name, od.d.Count)
	}
}

// quantiles published per op. Prometheus summary convention: the op's
// latency series carries {quantile="..."} labels plus _count and _sum.
var promQuantiles = []struct {
	label string
	q     float64
}{
	{"0.5", 0.50},
	{"0.9", 0.90},
	{"0.99", 0.99},
	{"0.999", 0.999},
}

func writeWireMetrics(b *strings.Builder, m *kvstore.Metrics) {
	if m == nil {
		return
	}
	fmt.Fprintf(b, "# HELP smartmem_op_latency_seconds Wire request latency per op, frame decode to response enqueue.\n")
	fmt.Fprintf(b, "# TYPE smartmem_op_latency_seconds summary\n")
	for _, op := range kvstore.Ops() {
		h := m.OpHistogram(op)
		if h == nil || h.Count() == 0 {
			continue
		}
		name := kvstore.OpName(op)
		for _, pq := range promQuantiles {
			fmt.Fprintf(b, "smartmem_op_latency_seconds{op=%q,quantile=%q} %g\n",
				name, pq.label, float64(h.Quantile(pq.q))/1e9)
		}
		fmt.Fprintf(b, "smartmem_op_latency_seconds_sum{op=%q} %g\n", name, float64(h.Sum())/1e9)
		fmt.Fprintf(b, "smartmem_op_latency_seconds_count{op=%q} %d\n", name, h.Count())
	}
	counter(b, "smartmem_ops_total", "Wire requests served, by op.", func(emit func(labels string, v float64)) {
		for _, op := range kvstore.Ops() {
			if h := m.OpHistogram(op); h != nil && h.Count() > 0 {
				emit(fmt.Sprintf("{op=%q}", kvstore.OpName(op)), float64(h.Count()))
			}
		}
	})
	scalar(b, "smartmem_wire_bytes_in_total", "counter", "Bytes read off client connections.", float64(m.BytesIn()))
	scalar(b, "smartmem_wire_bytes_out_total", "counter", "Bytes written to client connections.", float64(m.BytesOut()))
	scalar(b, "smartmem_wire_conns_total", "counter", "Client connections accepted.", float64(m.ConnsTotal()))
	scalar(b, "smartmem_wire_conns_active", "gauge", "Client connections currently open.", float64(m.ConnsActive()))
	scalar(b, "smartmem_wire_proto_errors_total", "counter", "Malformed or truncated request frames.", float64(m.ProtoErrors()))
}

func writeStoreMetrics(b *strings.Builder, node kvNode) {
	bk := node.backend
	scalar(b, "smartmem_store_pages_total", "gauge", "Store capacity in pages.", float64(bk.TotalPages()))
	scalar(b, "smartmem_store_pages_used", "gauge", "Pages currently holding data.", float64(bk.TotalPages()-bk.FreePages()))
	scalar(b, "smartmem_store_footprint_bytes", "gauge", "Host bytes backing the store.", float64(bk.Footprint()))

	tiers := bk.Tiers()
	if len(tiers) > 0 {
		fmt.Fprintf(b, "# HELP smartmem_tier_ops_total Overflow-tier operations, by tier and op.\n")
		fmt.Fprintf(b, "# TYPE smartmem_tier_ops_total counter\n")
		for _, t := range tiers {
			s := t.Stats()
			for _, c := range []struct {
				op string
				v  uint64
			}{
				{"put", s.Puts}, {"put_ok", s.PutsOK},
				{"get", s.Gets}, {"get_hit", s.GetsHit},
				{"flush", s.PageFlushes + s.ObjectFlushes},
				{"error", s.Errors},
			} {
				fmt.Fprintf(b, "smartmem_tier_ops_total{tier=%q,op=%q} %d\n", t.Name(), c.op, c.v)
			}
		}
	}
	for _, t := range tiers {
		ct, ok := t.(*tmem.CompressedTier)
		if !ok {
			continue
		}
		cs := ct.CompressedStats()
		tl := fmt.Sprintf("{tier=%q}", t.Name())
		labeled(b, "smartmem_compressed_pages_stored", "gauge", "Pages resident in the compressed tier.", tl, float64(cs.PagesStored))
		labeled(b, "smartmem_compressed_unique_blobs", "gauge", "Unique compressed blobs after dedup.", tl, float64(cs.UniqueBlobs))
		labeled(b, "smartmem_compressed_raw_bytes", "gauge", "Uncompressed bytes represented.", tl, float64(cs.RawBytes))
		labeled(b, "smartmem_compressed_stored_bytes", "gauge", "Arena bytes actually used.", tl, float64(cs.StoredBytes))
		labeled(b, "smartmem_compressed_dedup_hits_total", "counter", "Puts satisfied by an existing blob.", tl, float64(cs.DedupHits))
		labeled(b, "smartmem_compressed_rejected_full_total", "counter", "Puts rejected by the arena budget.", tl, float64(cs.RejectedFull))
		labeled(b, "smartmem_compressed_codec_seconds_total", "counter", "Cumulative codec time.",
			fmt.Sprintf("{tier=%q,dir=\"compress\"}", t.Name()), float64(cs.CompressNs)/1e9)
		fmt.Fprintf(b, "smartmem_compressed_codec_seconds_total{tier=%q,dir=\"decompress\"} %g\n",
			t.Name(), float64(cs.DecompressNs)/1e9)
	}

	if node.dlog != nil {
		ls := node.dlog.Stats()
		scalar(b, "smartmem_wal_appends_total", "counter", "Records appended to the write-ahead log.", float64(ls.Appends))
		scalar(b, "smartmem_wal_bytes_total", "counter", "Bytes appended to the write-ahead log.", float64(ls.AppendedBytes))
		scalar(b, "smartmem_wal_fsyncs_total", "counter", "fsync calls issued by the journal.", float64(ls.Fsyncs))
		scalar(b, "smartmem_wal_segments", "gauge", "Live WAL segment files.", float64(ls.Segments))
		scalar(b, "smartmem_wal_compactions_total", "counter", "Snapshot compactions completed.", float64(ls.Compactions))
		scalar(b, "smartmem_durable_pages_live", "gauge", "Pages the journal holds live.", float64(ls.PagesLive))
		scalar(b, "smartmem_durable_errors_total", "counter", "Journal I/O errors.", float64(ls.Errors))
		degraded := 0.0
		if node.dstore.Degraded() {
			degraded = 1
		}
		scalar(b, "smartmem_durable_degraded", "gauge", "1 when journaling has failed and the store serves memory-only.", degraded)
	}
}

// scalar emits one unlabeled sample with HELP/TYPE headers.
func scalar(b *strings.Builder, name, typ, help string, v float64) {
	fmt.Fprintf(b, "# HELP %s %s\n# TYPE %s %s\n%s %g\n", name, help, name, typ, name, v)
}

// labeled emits one labeled sample with HELP/TYPE headers.
func labeled(b *strings.Builder, name, typ, help, labels string, v float64) {
	fmt.Fprintf(b, "# HELP %s %s\n# TYPE %s %s\n%s%s %g\n", name, help, name, typ, name, labels, v)
}

// counter emits a labeled counter family: HELP/TYPE once, then every
// sample the fill callback produces, in deterministic label order.
func counter(b *strings.Builder, name, help string, fill func(emit func(labels string, v float64))) {
	type sample struct {
		labels string
		v      float64
	}
	var samples []sample
	fill(func(labels string, v float64) { samples = append(samples, sample{labels, v}) })
	if len(samples) == 0 {
		return
	}
	sort.Slice(samples, func(i, j int) bool { return samples[i].labels < samples[j].labels })
	fmt.Fprintf(b, "# HELP %s %s\n# TYPE %s counter\n", name, help, name)
	for _, s := range samples {
		fmt.Fprintf(b, "%s%s %g\n", name, s.labels, s.v)
	}
}
