package main

import (
	"bufio"
	"bytes"
	"fmt"
	"net"
	"os"
	"os/exec"
	"os/signal"
	"strings"
	"syscall"
	"testing"
	"time"

	"smartmem/internal/durable"
	"smartmem/internal/kvstore"
	"smartmem/internal/tmem"
)

// The kill-and-restart e2e re-execs the test binary as a real daemon
// process (so SIGKILL is a genuine kill, not a simulated one). When the
// helper env var is set, TestMain runs the daemon instead of the tests.
const (
	e2eHelperEnv = "SMARTMEM_KVD_E2E_HELPER"
	e2eDirEnv    = "SMARTMEM_KVD_E2E_DIR"
)

func TestMain(m *testing.M) {
	if os.Getenv(e2eHelperEnv) == "1" {
		runE2EHelper()
		return
	}
	os.Exit(m.Run())
}

// runE2EHelper is the daemon side: a durable fsync=always KV store on an
// ephemeral loopback port, address announced on stdout as "E2E_ADDR <addr>".
func runE2EHelper() {
	dir := os.Getenv(e2eDirEnv)
	if dir == "" {
		fmt.Fprintln(os.Stderr, "helper: "+e2eDirEnv+" not set")
		os.Exit(1)
	}
	backend := newBackend(4096, 2)
	node, err := openDurable(backend, dir, durable.FsyncAlways, os.Stdout)
	if err != nil {
		fmt.Fprintln(os.Stderr, "helper:", err)
		os.Exit(1)
	}
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		fmt.Fprintln(os.Stderr, "helper:", err)
		os.Exit(1)
	}
	fmt.Printf("E2E_ADDR %s\n", l.Addr())
	sigs := make(chan os.Signal, 1)
	signal.Notify(sigs, os.Interrupt, syscall.SIGTERM)
	if err := serveKV(l, node, sigs, drainTimeout, os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "helper:", err)
		os.Exit(1)
	}
}

// e2eDaemon wraps one helper process: its address, and its full output for
// post-mortem assertions.
type e2eDaemon struct {
	cmd  *exec.Cmd
	addr string
	out  *bytes.Buffer
	done chan error
}

func startE2EDaemon(t *testing.T, dir string) *e2eDaemon {
	t.Helper()
	cmd := exec.Command(os.Args[0])
	cmd.Env = append(os.Environ(), e2eHelperEnv+"=1", e2eDirEnv+"="+dir)
	stdout, err := cmd.StdoutPipe()
	if err != nil {
		t.Fatal(err)
	}
	cmd.Stderr = cmd.Stdout
	if err := cmd.Start(); err != nil {
		t.Fatal(err)
	}
	d := &e2eDaemon{cmd: cmd, out: &bytes.Buffer{}, done: make(chan error, 1)}
	addrc := make(chan string, 1)
	go func() {
		sc := bufio.NewScanner(stdout)
		for sc.Scan() {
			line := sc.Text()
			d.out.WriteString(line + "\n")
			if rest, ok := strings.CutPrefix(line, "E2E_ADDR "); ok {
				addrc <- rest
			}
		}
		close(addrc)
	}()
	go func() { d.done <- cmd.Wait() }()
	select {
	case addr, ok := <-addrc:
		if !ok {
			cmd.Process.Kill()
			t.Fatalf("daemon exited before announcing address:\n%s", d.out.String())
		}
		d.addr = addr
	case <-time.After(20 * time.Second):
		cmd.Process.Kill()
		t.Fatalf("daemon did not announce address:\n%s", d.out.String())
	}
	return d
}

func (d *e2eDaemon) dial(t *testing.T) *kvstore.Client {
	t.Helper()
	conn, err := kvstore.DialRetry("tcp", d.addr, 20, 50*time.Millisecond)
	if err != nil {
		t.Fatalf("dial daemon: %v", err)
	}
	return kvstore.NewClient(conn, pageSize)
}

func (d *e2eDaemon) wait(t *testing.T) {
	t.Helper()
	select {
	case <-d.done:
	case <-time.After(20 * time.Second):
		d.cmd.Process.Kill()
		t.Fatalf("daemon did not exit:\n%s", d.out.String())
	}
}

func e2ePage(tag byte, i int) []byte {
	p := make([]byte, pageSize)
	for j := range p {
		p[j] = byte(j) ^ tag ^ byte(i*13)
	}
	return p
}

// TestKillRestartZeroLoss is the durability acceptance test over the real
// wire: write persistent pages to a -durable daemon, SIGKILL it mid-flight,
// restart it against the same directory, and read every acknowledged page
// back byte-identical. A second, graceful restart then proves the clean
// shutdown marker short-circuits WAL replay.
func TestKillRestartZeroLoss(t *testing.T) {
	if testing.Short() {
		t.Skip("re-exec e2e skipped in -short")
	}
	dir := t.TempDir()

	// --- first life: seed, then SIGKILL ---
	d1 := startE2EDaemon(t, dir)
	cl := d1.dial(t)
	pool, err := cl.NewPool(7, tmem.Persistent)
	if err != nil {
		t.Fatal(err)
	}

	const n = 96
	keys := make([]tmem.Key, n)
	datas := make([][]byte, n)
	sts := make([]tmem.Status, n)
	for i := range keys {
		keys[i] = tmem.Key{Pool: pool, Object: tmem.ObjectID(i / 16), Index: tmem.PageIndex(i)}
		datas[i] = e2ePage(0xA5, i)
	}
	if err := cl.PutBatch(keys, datas, sts); err != nil {
		t.Fatal(err)
	}
	for i, st := range sts {
		if st != tmem.STmem {
			t.Fatalf("put %d not acknowledged: %v", i, st)
		}
	}
	// Overwrites must supersede, and flushed pages must stay flushed.
	expect := make(map[tmem.Key][]byte, n)
	for i := range keys {
		expect[keys[i]] = datas[i]
	}
	for i := 0; i < n; i += 7 {
		upd := e2ePage(0x3C, i)
		if st, err := cl.Put(keys[i], upd); err != nil || st != tmem.STmem {
			t.Fatalf("overwrite %d: %v, %v", i, st, err)
		}
		expect[keys[i]] = upd
	}
	flushed := map[tmem.Key]bool{}
	for i := 3; i < n; i += 17 {
		if _, err := cl.FlushPage(keys[i]); err != nil {
			t.Fatal(err)
		}
		delete(expect, keys[i])
		flushed[keys[i]] = true
	}
	// An ephemeral pool is droppable by contract: it must NOT resurrect.
	ephPool, err := cl.NewPool(7, tmem.Ephemeral)
	if err != nil {
		t.Fatal(err)
	}
	ephKey := tmem.Key{Pool: ephPool, Object: 1, Index: 1}
	if _, err := cl.Put(ephKey, e2ePage(0x55, 1)); err != nil {
		t.Fatal(err)
	}
	cl.Close()

	// Every page above was acknowledged over the wire, so under
	// fsync=always each is in the WAL. Kill without ceremony.
	if err := d1.cmd.Process.Kill(); err != nil {
		t.Fatal(err)
	}
	d1.wait(t)

	// --- second life: recover, verify byte-identical, SIGTERM ---
	d2 := startE2EDaemon(t, dir)
	if !strings.Contains(d2.out.String(), "recovered") {
		t.Errorf("restart output missing recovery summary:\n%s", d2.out.String())
	}
	cl2 := d2.dial(t)
	got := make([]byte, pageSize)
	for key, want := range expect {
		st, data, err := cl2.Get(key)
		if err != nil || st != tmem.STmem {
			t.Fatalf("get %v after restart: %v, %v", key, st, err)
		}
		copy(got, data)
		if !bytes.Equal(got, want) {
			t.Fatalf("page %v not byte-identical after SIGKILL restart", key)
		}
	}
	for key := range flushed {
		if st, _, err := cl2.Get(key); err != nil || st == tmem.STmem {
			t.Fatalf("flushed page %v resurrected: %v, %v", key, st, err)
		}
	}
	if st, _, err := cl2.Get(ephKey); err != nil || st == tmem.STmem {
		t.Fatalf("ephemeral page survived a crash: %v, %v", st, err)
	}
	// The recovered pool keeps accepting writes under its original id.
	post := tmem.Key{Pool: pool, Object: 999, Index: 0}
	postData := e2ePage(0x77, 999)
	if st, err := cl2.Put(post, postData); err != nil || st != tmem.STmem {
		t.Fatalf("post-recovery put: %v, %v", st, err)
	}
	expect[post] = postData
	cl2.Close()
	if err := d2.cmd.Process.Signal(syscall.SIGTERM); err != nil {
		t.Fatal(err)
	}
	d2.wait(t)
	if !strings.Contains(d2.out.String(), "clean shutdown marker written") {
		t.Errorf("graceful shutdown did not write the clean marker:\n%s", d2.out.String())
	}

	// --- third life: warm start from the marker, data still intact ---
	d3 := startE2EDaemon(t, dir)
	if !strings.Contains(d3.out.String(), "clean shutdown marker") {
		t.Errorf("warm start did not use the clean marker:\n%s", d3.out.String())
	}
	cl3 := d3.dial(t)
	for key, want := range expect {
		st, data, err := cl3.Get(key)
		if err != nil || st != tmem.STmem || !bytes.Equal(data, want) {
			t.Fatalf("get %v after warm restart: %v, %v", key, st, err)
		}
	}
	cl3.Close()
	if err := d3.cmd.Process.Signal(syscall.SIGTERM); err != nil {
		t.Fatal(err)
	}
	d3.wait(t)
}
