package main

import (
	"bytes"
	"fmt"
	"net"
	"os"
	"strings"
	"sync"
	"syscall"
	"testing"
	"time"

	"smartmem/internal/kvstore"
	"smartmem/internal/tmem"
)

func TestNewBackendShardSizing(t *testing.T) {
	if got := newBackend(1024, 4).Shards(); got != 4 {
		t.Errorf("Shards = %d, want 4", got)
	}
	if got := newBackend(1024, 3).Shards(); got != 4 {
		t.Errorf("Shards(3) = %d, want 4 (power of two)", got)
	}
	if got := newBackend(1024, 0).Shards(); got < 1 {
		t.Errorf("Shards(0) = %d, want >= 1 (GOMAXPROCS default)", got)
	}
	if ps := newBackend(16, 1).PageSize(); int(ps) != pageSize {
		t.Errorf("PageSize = %d, want %d", ps, pageSize)
	}
}

// End-to-end loopback test: start the daemon's serving loop, run
// concurrent put/get/flush round trips from several clients, then deliver
// a signal and verify the graceful shutdown path (drain + final stats).
func TestKVDaemonEndToEnd(t *testing.T) {
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Skipf("loopback unavailable: %v", err)
	}
	backend := newBackend(4096, 4)
	sigs := make(chan os.Signal, 1)
	var out bytes.Buffer
	served := make(chan error, 1)
	go func() { served <- serveKV(l, backend, sigs, time.Second, &out) }()

	const clients = 4
	var wg sync.WaitGroup
	errs := make(chan error, clients)
	for i := 0; i < clients; i++ {
		wg.Add(1)
		go func(vm tmem.VMID) {
			defer wg.Done()
			conn, err := net.Dial("tcp", l.Addr().String())
			if err != nil {
				errs <- err
				return
			}
			cl := kvstore.NewClient(conn, pageSize)
			defer cl.Close()
			pool, err := cl.NewPool(vm, tmem.Persistent)
			if err != nil {
				errs <- err
				return
			}
			page := make([]byte, pageSize)
			for j := 0; j < 64; j++ {
				page[0] = byte(vm)
				key := tmem.Key{Pool: pool, Object: tmem.ObjectID(j % 3), Index: tmem.PageIndex(j)}
				if st, err := cl.Put(key, page); err != nil || st != tmem.STmem {
					errs <- fmt.Errorf("vm %d put %d: status %v, err %v", vm, j, st, err)
					return
				}
				st, got, err := cl.Get(key)
				if err != nil || st != tmem.STmem || len(got) == 0 || got[0] != byte(vm) {
					errs <- fmt.Errorf("vm %d get %d: status %v, data %v, err %v", vm, j, st, got, err)
					return
				}
				if j%2 == 0 {
					if st, err := cl.FlushPage(key); err != nil || st != tmem.STmem {
						errs <- fmt.Errorf("vm %d flush %d: status %v, err %v", vm, j, st, err)
						return
					}
				}
			}
		}(tmem.VMID(i + 1))
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		if err != nil {
			t.Fatal(err)
		}
	}

	sigs <- syscall.SIGTERM
	select {
	case err := <-served:
		if err != nil {
			t.Fatalf("serveKV = %v", err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("serveKV did not return after SIGTERM")
	}

	if err := backend.CheckInvariants(); err != nil {
		t.Error(err)
	}
	log := out.String()
	if !strings.Contains(log, "draining connections") {
		t.Errorf("shutdown log missing drain notice:\n%s", log)
	}
	if !strings.Contains(log, "final store state") {
		t.Errorf("shutdown log missing final stats:\n%s", log)
	}
	for vm := 1; vm <= clients; vm++ {
		c, ok := backend.Counts(tmem.VMID(vm))
		if !ok || c.PutsSucc != 64 || c.GetsHit != 64 || c.Flushes != 32 {
			t.Errorf("vm %d counts = %+v (ok=%v), want 64 puts, 64 gets, 32 flushes", vm, c, ok)
		}
	}
	// New connections are refused after shutdown.
	if c, err := net.Dial("tcp", l.Addr().String()); err == nil {
		c.Close()
		t.Error("daemon still accepting after shutdown")
	}
}

// A client that never disconnects must not wedge the shutdown: the drain
// deadline forces it closed and serveKV still reports final stats.
func TestKVDaemonForcedDrain(t *testing.T) {
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Skipf("loopback unavailable: %v", err)
	}
	backend := newBackend(256, 2)
	sigs := make(chan os.Signal, 1)
	var out bytes.Buffer
	served := make(chan error, 1)
	go func() { served <- serveKV(l, backend, sigs, 50*time.Millisecond, &out) }()

	conn, err := net.Dial("tcp", l.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	cl := kvstore.NewClient(conn, pageSize)
	if _, err := cl.NewPool(1, tmem.Persistent); err != nil {
		t.Fatal(err)
	}
	// Leave the connection open and signal shutdown.
	sigs <- syscall.SIGINT
	select {
	case err := <-served:
		if err != nil {
			t.Fatalf("serveKV = %v", err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("serveKV hung on a held connection")
	}
	if !strings.Contains(out.String(), "forced close after drain timeout") {
		t.Errorf("log missing forced-close notice:\n%s", out.String())
	}
}
