package main

import (
	"bytes"
	"fmt"
	"net"
	"os"
	"strings"
	"sync"
	"syscall"
	"testing"
	"time"

	"smartmem/internal/kvstore"
	"smartmem/internal/tmem"
)

func TestNewBackendShardSizing(t *testing.T) {
	if got := newBackend(1024, 4).Shards(); got != 4 {
		t.Errorf("Shards = %d, want 4", got)
	}
	if got := newBackend(1024, 3).Shards(); got != 4 {
		t.Errorf("Shards(3) = %d, want 4 (power of two)", got)
	}
	if got := newBackend(1024, 0).Shards(); got < 1 {
		t.Errorf("Shards(0) = %d, want >= 1 (GOMAXPROCS default)", got)
	}
	if ps := newBackend(16, 1).PageSize(); int(ps) != pageSize {
		t.Errorf("PageSize = %d, want %d", ps, pageSize)
	}
}

// End-to-end loopback test: start the daemon's serving loop, run
// concurrent put/get/flush round trips from several clients, then deliver
// a signal and verify the graceful shutdown path (drain + final stats).
func TestKVDaemonEndToEnd(t *testing.T) {
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Skipf("loopback unavailable: %v", err)
	}
	backend := newBackend(4096, 4)
	sigs := make(chan os.Signal, 1)
	var out bytes.Buffer
	served := make(chan error, 1)
	go func() { served <- serveKV(l, kvNode{store: backend, backend: backend}, sigs, time.Second, &out) }()

	const clients = 4
	var wg sync.WaitGroup
	errs := make(chan error, clients)
	for i := 0; i < clients; i++ {
		wg.Add(1)
		go func(vm tmem.VMID) {
			defer wg.Done()
			conn, err := net.Dial("tcp", l.Addr().String())
			if err != nil {
				errs <- err
				return
			}
			cl := kvstore.NewClient(conn, pageSize)
			defer cl.Close()
			pool, err := cl.NewPool(vm, tmem.Persistent)
			if err != nil {
				errs <- err
				return
			}
			page := make([]byte, pageSize)
			for j := 0; j < 64; j++ {
				page[0] = byte(vm)
				key := tmem.Key{Pool: pool, Object: tmem.ObjectID(j % 3), Index: tmem.PageIndex(j)}
				if st, err := cl.Put(key, page); err != nil || st != tmem.STmem {
					errs <- fmt.Errorf("vm %d put %d: status %v, err %v", vm, j, st, err)
					return
				}
				st, got, err := cl.Get(key)
				if err != nil || st != tmem.STmem || len(got) == 0 || got[0] != byte(vm) {
					errs <- fmt.Errorf("vm %d get %d: status %v, data %v, err %v", vm, j, st, got, err)
					return
				}
				if j%2 == 0 {
					if st, err := cl.FlushPage(key); err != nil || st != tmem.STmem {
						errs <- fmt.Errorf("vm %d flush %d: status %v, err %v", vm, j, st, err)
						return
					}
				}
			}
		}(tmem.VMID(i + 1))
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		if err != nil {
			t.Fatal(err)
		}
	}

	sigs <- syscall.SIGTERM
	select {
	case err := <-served:
		if err != nil {
			t.Fatalf("serveKV = %v", err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("serveKV did not return after SIGTERM")
	}

	if err := backend.CheckInvariants(); err != nil {
		t.Error(err)
	}
	log := out.String()
	if !strings.Contains(log, "draining connections") {
		t.Errorf("shutdown log missing drain notice:\n%s", log)
	}
	if !strings.Contains(log, "final store state") {
		t.Errorf("shutdown log missing final stats:\n%s", log)
	}
	for vm := 1; vm <= clients; vm++ {
		c, ok := backend.Counts(tmem.VMID(vm))
		if !ok || c.PutsSucc != 64 || c.GetsHit != 64 || c.Flushes != 32 {
			t.Errorf("vm %d counts = %+v (ok=%v), want 64 puts, 64 gets, 32 flushes", vm, c, ok)
		}
	}
	// New connections are refused after shutdown.
	if c, err := net.Dial("tcp", l.Addr().String()); err == nil {
		c.Close()
		t.Error("daemon still accepting after shutdown")
	}
}

// A client that never disconnects must not wedge the shutdown: the drain
// deadline forces it closed and serveKV still reports final stats.
func TestKVDaemonForcedDrain(t *testing.T) {
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Skipf("loopback unavailable: %v", err)
	}
	backend := newBackend(256, 2)
	sigs := make(chan os.Signal, 1)
	var out bytes.Buffer
	served := make(chan error, 1)
	go func() {
		served <- serveKV(l, kvNode{store: backend, backend: backend}, sigs, 50*time.Millisecond, &out)
	}()

	conn, err := net.Dial("tcp", l.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	cl := kvstore.NewClient(conn, pageSize)
	if _, err := cl.NewPool(1, tmem.Persistent); err != nil {
		t.Fatal(err)
	}
	// Leave the connection open and signal shutdown.
	sigs <- syscall.SIGINT
	select {
	case err := <-served:
		if err != nil {
			t.Fatalf("serveKV = %v", err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("serveKV hung on a held connection")
	}
	if !strings.Contains(out.String(), "forced close after drain timeout") {
		t.Errorf("log missing forced-close notice:\n%s", out.String())
	}
}

// Two chained daemons over real TCP: a small front store shipping its
// overflow to a roomier peer daemon — the topology -remote assembles. Puts
// beyond the front's capacity must succeed via the peer, survive a
// front-store miss on the way back, and vanish everywhere on flush.
func TestChainedDaemonsRemoteTier(t *testing.T) {
	peerL, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Skipf("loopback unavailable: %v", err)
	}
	frontL, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Skipf("loopback unavailable: %v", err)
	}

	peerBackend := newBackend(1024, 2)
	frontBackend := newBackend(8, 2)

	peerSigs := make(chan os.Signal, 1)
	frontSigs := make(chan os.Signal, 1)
	var peerOut, frontOut bytes.Buffer
	peerServed := make(chan error, 1)
	frontServed := make(chan error, 1)
	go func() {
		peerServed <- serveKV(peerL, kvNode{store: peerBackend, backend: peerBackend}, peerSigs, time.Second, &peerOut)
	}()

	// Wire the front daemon's remote tier exactly like -remote does: one
	// wire client shared by every connection handler, serialized by
	// SyncClient.
	conn, err := net.Dial("tcp", peerL.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	svc := kvstore.NewSyncClient(kvstore.NewClient(conn, pageSize))
	frontBackend.AttachTier(tmem.NewRemoteTier("kvd-peer", svc, 1000))
	go func() {
		frontServed <- serveKV(frontL, kvNode{store: frontBackend, backend: frontBackend}, frontSigs, time.Second, &frontOut)
	}()

	// Several concurrent clients overflow through the single shared wire
	// client first; frame interleaving on the peer conn would corrupt the
	// protocol (run with -race).
	const churners = 4
	var cwg sync.WaitGroup
	cerrs := make(chan error, churners)
	for c := 0; c < churners; c++ {
		cwg.Add(1)
		go func(vm tmem.VMID) {
			defer cwg.Done()
			cc, err := net.Dial("tcp", frontL.Addr().String())
			if err != nil {
				cerrs <- err
				return
			}
			ccl := kvstore.NewClient(cc, pageSize)
			defer ccl.Close()
			pool, err := ccl.NewPool(vm, tmem.Persistent)
			if err != nil {
				cerrs <- err
				return
			}
			buf := make([]byte, pageSize)
			for j := 0; j < 48; j++ {
				buf[0], buf[1] = byte(vm), byte(j)
				key := tmem.Key{Pool: pool, Object: 9, Index: tmem.PageIndex(j)}
				if st, err := ccl.Put(key, buf); err != nil || st != tmem.STmem {
					cerrs <- fmt.Errorf("vm %d put %d = %v, %v", vm, j, st, err)
					return
				}
				st, got, err := ccl.Get(key)
				if err != nil || st != tmem.STmem || got[0] != byte(vm) || got[1] != byte(j) {
					cerrs <- fmt.Errorf("vm %d get %d = %v, %v (got %v)", vm, j, st, err, got[:2])
					return
				}
				if st, err := ccl.FlushPage(key); err != nil || st != tmem.STmem {
					cerrs <- fmt.Errorf("vm %d flush %d = %v, %v", vm, j, st, err)
					return
				}
			}
		}(tmem.VMID(10 + c))
	}
	cwg.Wait()
	close(cerrs)
	for err := range cerrs {
		t.Fatal(err)
	}

	cconn, err := net.Dial("tcp", frontL.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	cl := kvstore.NewClient(cconn, pageSize)
	pool, err := cl.NewPool(1, tmem.Persistent)
	if err != nil {
		t.Fatal(err)
	}
	page := make([]byte, pageSize)
	const total = 32 // 4x the front store's 8 frames
	for i := 0; i < total; i++ {
		page[0] = byte(i)
		key := tmem.Key{Pool: pool, Object: 1, Index: tmem.PageIndex(i)}
		if st, err := cl.Put(key, page); err != nil || st != tmem.STmem {
			t.Fatalf("put %d = %v, %v (overflow not absorbed by peer)", i, st, err)
		}
	}
	if got := peerBackend.UsedBy(1000); got != total-8 {
		t.Errorf("peer absorbed %d pages, want %d", got, total-8)
	}
	for i := total - 1; i >= 0; i-- {
		key := tmem.Key{Pool: pool, Object: 1, Index: tmem.PageIndex(i)}
		st, got, err := cl.Get(key)
		if err != nil || st != tmem.STmem || got[0] != byte(i) {
			t.Fatalf("get %d = %v, %v (data %v)", i, st, err, got[:1])
		}
		if st, err := cl.FlushPage(key); err != nil || st != tmem.STmem {
			t.Fatalf("flush %d = %v, %v", i, st, err)
		}
	}
	if used := frontBackend.TotalPages() - frontBackend.FreePages(); used != 0 {
		t.Errorf("front store still holds %d pages", used)
	}
	if got := peerBackend.UsedBy(1000); got != 0 {
		t.Errorf("peer still holds %d remote pages", got)
	}
	cl.Close()

	frontSigs <- os.Interrupt
	if err := <-frontServed; err != nil {
		t.Errorf("front daemon exit: %v", err)
	}
	peerSigs <- os.Interrupt
	if err := <-peerServed; err != nil {
		t.Errorf("peer daemon exit: %v", err)
	}
	if !strings.Contains(frontOut.String(), "tier kvd-peer") {
		t.Errorf("front daemon final stats lack tier line:\n%s", frontOut.String())
	}
}

// Batch frames against the live daemon: concurrent clients ship runs
// through OpPutBatch/OpGetBatch while others issue per-page ops on the
// same pipelined server.
func TestKVDaemonBatchFrames(t *testing.T) {
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Skipf("loopback unavailable: %v", err)
	}
	backend := newBackend(1<<16, 4)
	sigs := make(chan os.Signal, 1)
	var out bytes.Buffer
	served := make(chan error, 1)
	go func() { served <- serveKV(l, kvNode{store: backend, backend: backend}, sigs, time.Second, &out) }()

	const clients = 4
	const run = 48
	var wg sync.WaitGroup
	errs := make(chan error, clients)
	for i := 0; i < clients; i++ {
		wg.Add(1)
		go func(vm tmem.VMID) {
			defer wg.Done()
			conn, err := net.Dial("tcp", l.Addr().String())
			if err != nil {
				errs <- err
				return
			}
			cl := kvstore.NewClient(conn, pageSize)
			defer cl.Close()
			pool, err := cl.NewPool(vm, tmem.Persistent)
			if err != nil {
				errs <- err
				return
			}
			keys := make([]tmem.Key, run)
			datas := make([][]byte, run)
			sts := make([]tmem.Status, run)
			dsts := make([][]byte, run)
			for j := range keys {
				keys[j] = tmem.Key{Pool: pool, Object: 1, Index: tmem.PageIndex(j)}
				datas[j] = bytes.Repeat([]byte{byte(vm)}, pageSize)
				dsts[j] = make([]byte, pageSize)
			}
			for round := 0; round < 4; round++ {
				if err := cl.PutBatch(keys, datas, sts); err != nil {
					errs <- fmt.Errorf("vm %d put-batch: %v", vm, err)
					return
				}
				for j, st := range sts {
					if st != tmem.STmem {
						errs <- fmt.Errorf("vm %d put-batch item %d: %v", vm, j, st)
						return
					}
				}
				if err := cl.GetBatch(keys, dsts, sts); err != nil {
					errs <- fmt.Errorf("vm %d get-batch: %v", vm, err)
					return
				}
				for j, st := range sts {
					if st != tmem.STmem || dsts[j][0] != byte(vm) {
						errs <- fmt.Errorf("vm %d get-batch item %d: %v (byte %d)", vm, j, st, dsts[j][0])
						return
					}
				}
				// Interleave a per-page op on the same pipelined conn.
				if st, err := cl.FlushPage(keys[0]); err != nil || st != tmem.STmem {
					errs <- fmt.Errorf("vm %d interleaved flush: %v, %v", vm, st, err)
					return
				}
				if st, err := cl.Put(keys[0], datas[0]); err != nil || st != tmem.STmem {
					errs <- fmt.Errorf("vm %d interleaved put: %v, %v", vm, st, err)
					return
				}
			}
		}(tmem.VMID(i + 1))
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		if err != nil {
			t.Fatal(err)
		}
	}
	if err := backend.CheckInvariants(); err != nil {
		t.Error(err)
	}
	for vm := 1; vm <= clients; vm++ {
		if got := backend.UsedBy(tmem.VMID(vm)); got != run {
			t.Errorf("vm %d holds %d pages, want %d", vm, got, run)
		}
	}
	sigs <- syscall.SIGTERM
	select {
	case err := <-served:
		if err != nil {
			t.Fatalf("serveKV = %v", err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("serveKV did not return after SIGTERM")
	}
}
