package main

import (
	"io"
	"net/http/httptest"
	"strconv"
	"strings"
	"testing"
	"time"

	"smartmem/internal/kvstore"
	"smartmem/internal/mem"
	"smartmem/internal/tmem"
)

// TestPromHandler scrapes the /metrics handler over a store with a
// compressed tier attached and recorded wire activity, and checks the
// families, label sets and a few exact values of the exposition.
func TestPromHandler(t *testing.T) {
	backend := newBackend(mem.Pages(256), 1)
	backend.AttachTier(tmem.NewCompressedTier(tmem.CompressedTierConfig{
		PageSize:      pageSize,
		CapacityBytes: 1 * mem.MiB,
		Codec:         tmem.NewLZCodec(),
	}))
	m := kvstore.NewMetrics()
	for i := 0; i < 10; i++ {
		m.OpHistogram(kvstore.OpPut).Record(int64(time.Millisecond))
	}
	m.OpHistogram(kvstore.OpGet).Record(int64(2 * time.Millisecond))

	node := kvNode{store: backend, backend: backend, metrics: m}
	srv := httptest.NewServer(promHandler(node, m))
	defer srv.Close()

	resp, err := srv.Client().Get(srv.URL + "/metrics")
	if err != nil {
		t.Fatalf("scrape: %v", err)
	}
	defer resp.Body.Close()
	if ct := resp.Header.Get("Content-Type"); !strings.HasPrefix(ct, "text/plain") {
		t.Errorf("content type %q, want text/plain exposition", ct)
	}
	raw, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatalf("read body: %v", err)
	}
	body := string(raw)

	for _, want := range []string{
		`smartmem_op_latency_seconds{op="put",quantile="0.99"} `,
		`smartmem_op_latency_seconds_count{op="put"} 10`,
		`smartmem_op_latency_seconds_count{op="get"} 1`,
		`smartmem_ops_total{op="put"} 10`,
		"# TYPE smartmem_op_latency_seconds summary",
		"# TYPE smartmem_ops_total counter",
		"smartmem_store_pages_total 256",
		"smartmem_store_pages_used 0",
		"# TYPE smartmem_wire_conns_active gauge",
		"smartmem_wire_proto_errors_total 0",
		`smartmem_tier_ops_total{tier="compressed",op="put"} 0`,
		`smartmem_compressed_stored_bytes{tier="compressed"} 0`,
	} {
		if !strings.Contains(body, want) {
			t.Errorf("exposition missing %q", want)
		}
	}
	// No durable log attached: the WAL families must be absent.
	if strings.Contains(body, "smartmem_wal_") {
		t.Error("exposition has WAL families without -durable")
	}

	// The put p50 must round-trip through the histogram to ~1ms in
	// seconds (hdr upper-bound error is <= 1/64).
	for _, line := range strings.Split(body, "\n") {
		if strings.HasPrefix(line, `smartmem_op_latency_seconds{op="put",quantile="0.5"} `) {
			v, err := strconv.ParseFloat(line[strings.LastIndexByte(line, ' ')+1:], 64)
			if err != nil {
				t.Fatalf("parse %q: %v", line, err)
			}
			if v < 0.001 || v > 0.00102 {
				t.Errorf("put p50 = %gs, want ~1ms", v)
			}
			return
		}
	}
	t.Error("no put p50 sample found")
}
