package main

import (
	"io"
	"net/http/httptest"
	"strconv"
	"strings"
	"testing"
	"time"

	"smartmem/internal/kvstore"
	"smartmem/internal/mem"
	"smartmem/internal/tmem"
)

// TestPromHandler scrapes the /metrics handler over a store with a
// compressed tier attached and recorded wire activity, and checks the
// families, label sets and a few exact values of the exposition.
func TestPromHandler(t *testing.T) {
	backend := newBackend(mem.Pages(256), 1)
	backend.AttachTier(tmem.NewCompressedTier(tmem.CompressedTierConfig{
		PageSize:      pageSize,
		CapacityBytes: 1 * mem.MiB,
		Codec:         tmem.NewLZCodec(),
	}))
	m := kvstore.NewMetrics()
	for i := 0; i < 10; i++ {
		m.OpHistogram(kvstore.OpPut).Record(int64(time.Millisecond))
	}
	m.OpHistogram(kvstore.OpGet).Record(int64(2 * time.Millisecond))

	node := kvNode{store: backend, backend: backend, metrics: m}
	srv := httptest.NewServer(promHandler(node, m))
	defer srv.Close()

	resp, err := srv.Client().Get(srv.URL + "/metrics")
	if err != nil {
		t.Fatalf("scrape: %v", err)
	}
	defer resp.Body.Close()
	if ct := resp.Header.Get("Content-Type"); !strings.HasPrefix(ct, "text/plain") {
		t.Errorf("content type %q, want text/plain exposition", ct)
	}
	raw, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatalf("read body: %v", err)
	}
	body := string(raw)

	for _, want := range []string{
		`smartmem_op_latency_seconds{op="put",quantile="0.99"} `,
		`smartmem_op_latency_seconds_count{op="put"} 10`,
		`smartmem_op_latency_seconds_count{op="get"} 1`,
		`smartmem_ops_total{op="put"} 10`,
		"# TYPE smartmem_op_latency_seconds summary",
		"# TYPE smartmem_ops_total counter",
		"smartmem_store_pages_total 256",
		"smartmem_store_pages_used 0",
		"# TYPE smartmem_wire_conns_active gauge",
		"smartmem_wire_proto_errors_total 0",
		`smartmem_tier_ops_total{tier="compressed",op="put"} 0`,
		`smartmem_compressed_stored_bytes{tier="compressed"} 0`,
	} {
		if !strings.Contains(body, want) {
			t.Errorf("exposition missing %q", want)
		}
	}
	// No durable log attached: the WAL families must be absent.
	if strings.Contains(body, "smartmem_wal_") {
		t.Error("exposition has WAL families without -durable")
	}

	// The put p50 must round-trip through the histogram to ~1ms in
	// seconds (hdr upper-bound error is <= 1/64).
	found := false
	for _, line := range strings.Split(body, "\n") {
		if strings.HasPrefix(line, `smartmem_op_latency_seconds{op="put",quantile="0.5"} `) {
			v, err := strconv.ParseFloat(line[strings.LastIndexByte(line, ' ')+1:], 64)
			if err != nil {
				t.Fatalf("parse %q: %v", line, err)
			}
			if v < 0.001 || v > 0.00102 {
				t.Errorf("put p50 = %gs, want ~1ms", v)
			}
			found = true
			break
		}
	}
	if !found {
		t.Error("no put p50 sample found")
	}
	// First scrape has no baseline: interval families must be absent.
	if strings.Contains(body, "smartmem_op_interval_") {
		t.Error("first scrape exposes interval families without a baseline")
	}
}

// promSample extracts the value of the first sample line with the given
// prefix, or fails the test.
func promSample(t *testing.T, body, prefix string) float64 {
	t.Helper()
	for _, line := range strings.Split(body, "\n") {
		if strings.HasPrefix(line, prefix) {
			v, err := strconv.ParseFloat(line[strings.LastIndexByte(line, ' ')+1:], 64)
			if err != nil {
				t.Fatalf("parse %q: %v", line, err)
			}
			return v
		}
	}
	t.Fatalf("no sample with prefix %q", prefix)
	return 0
}

// TestPromHandlerIntervalFamilies drives two scrapes with recording in
// between and a pinned 10s wall-clock gap: the second scrape must expose
// per-op interval rate and latency quantiles computed over just that
// window, while the cumulative summary keeps counting from process start.
func TestPromHandlerIntervalFamilies(t *testing.T) {
	backend := newBackend(mem.Pages(64), 1)
	m := kvstore.NewMetrics()
	node := kvNode{store: backend, backend: backend, metrics: m}

	// Injectable clock: each scrape advances wall time by 10s.
	clock := time.Unix(1000, 0)
	now := func() time.Time { return clock }
	srv := httptest.NewServer(promHandlerClock(node, m, now))
	defer srv.Close()

	scrape := func() string {
		t.Helper()
		resp, err := srv.Client().Get(srv.URL + "/metrics")
		if err != nil {
			t.Fatalf("scrape: %v", err)
		}
		defer resp.Body.Close()
		raw, err := io.ReadAll(resp.Body)
		if err != nil {
			t.Fatalf("read body: %v", err)
		}
		return string(raw)
	}

	// Pre-baseline activity: 1000 slow puts that must NOT leak into the
	// interval view.
	for i := 0; i < 1000; i++ {
		m.OpHistogram(kvstore.OpPut).Record(int64(100 * time.Millisecond))
	}
	first := scrape()
	if strings.Contains(first, "smartmem_op_interval_") {
		t.Fatal("baseline scrape exposes interval families")
	}

	// Interval activity: 50 fast puts over a pinned 10s window.
	for i := 0; i < 50; i++ {
		m.OpHistogram(kvstore.OpPut).Record(int64(time.Millisecond))
	}
	clock = clock.Add(10 * time.Second)
	second := scrape()

	if rate := promSample(t, second, `smartmem_op_interval_rate{op="put"} `); rate != 5 {
		t.Errorf("interval rate = %g req/s, want 50/10s = 5", rate)
	}
	if n := promSample(t, second, `smartmem_op_interval_latency_seconds_count{op="put"} `); n != 50 {
		t.Errorf("interval count = %g, want 50", n)
	}
	// Interval p99 reflects only the 1ms records; the cumulative p99 is
	// still dominated by the 100ms pre-baseline batch.
	ip99 := promSample(t, second, `smartmem_op_interval_latency_seconds{op="put",quantile="0.99"} `)
	if ip99 < 0.001 || ip99 > 0.00102 {
		t.Errorf("interval p99 = %gs, want ~1ms", ip99)
	}
	if cp99 := promSample(t, second, `smartmem_op_latency_seconds{op="put",quantile="0.99"} `); cp99 < 0.09 {
		t.Errorf("cumulative p99 = %gs, want ~100ms (history must stay)", cp99)
	}

	// A quiet op stays out of the interval families entirely.
	if strings.Contains(second, `smartmem_op_interval_rate{op="get"}`) {
		t.Error("quiet op leaked into interval families")
	}

	// Third scrape with no activity: interval families disappear again.
	clock = clock.Add(10 * time.Second)
	if third := scrape(); strings.Contains(third, "smartmem_op_interval_") {
		t.Error("idle interval still exposes interval families")
	}
}
