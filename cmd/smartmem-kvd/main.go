// Command smartmem-kvd exposes the real tmem key–value backend over TCP
// (see internal/kvstore for the protocol), demonstrating that the store is
// a genuine page-copy key–value service and not just a simulation
// artefact. It also runs the Memory Manager daemon side of the TKM
// protocol.
//
// The served store is sharded (tmem.NewBackendOpts): keys hash across
// -shards lock stripes so concurrent connections scale with cores instead
// of serializing on one mutex. Requests may be pipelined, and the batch
// frames (OpPutBatch/OpGetBatch) move whole runs of pages per round trip
// — the server executes them through the backend's stripe-grouped batch
// path, one lock acquisition per stripe per run. SIGINT/SIGTERM trigger a
// graceful stop: accepting ends, in-flight connections drain (bounded by
// a timeout), and the final store statistics are printed.
//
// A daemon may additionally chain a RAMster-style remote tmem tier with
// -remote: overflow pages its local store rejects (out of frames) are
// shipped to a peer smartmem-kvd over the same wire protocol, and only
// puts neither node can hold fail back to the client. Keep -remote chains
// acyclic (A→B, or A→B→C; never back to A): overflow requests are served
// through the peer's full tier stack, so a cycle would bounce pages.
//
// With -compress the daemon additionally attaches a compressed in-RAM tier
// ahead of any remote tier: overflow pages compress and dedup into a slab
// arena of the given byte budget before the daemon considers shipping them
// to a peer or failing the put. -debug serves Go expvar (JSON over HTTP)
// with live tier and compression counters — stored vs raw bytes, dedup
// hits, codec nanoseconds — so the achieved ratio is observable on a
// running daemon.
//
// With -durable the daemon journals every acknowledged persistent-pool
// mutation to a write-ahead log under the given directory (plus periodic
// slab snapshots; see internal/durable). On start it recovers the journaled
// state — pools under their original wire-visible ids, pages through the
// full tier stack — so a SIGKILL loses nothing acknowledged over the wire.
// A graceful SIGINT/SIGTERM additionally compacts and writes a
// clean-shutdown marker so the next start skips the WAL replay. -fsync
// picks the commit policy: always (fsync per commit, group-committed),
// interval (background fsync, default), off (benchmarking only).
//
// Modes:
//
//	smartmem-kvd -listen :7077 -pages 262144 -shards 8   # KV daemon
//	smartmem-kvd -listen :7077 -remote far:7077          # + remote tier
//	smartmem-kvd -listen :7077 -compress 256             # + 256 MiB compressed tier
//	smartmem-kvd -listen :7077 -durable /var/lib/smartmem  # + crash durability
//	smartmem-kvd -listen :7077 -debug :7079              # + expvar counters
//	smartmem-kvd -connect :7077 -demo                    # KV client demo
//	smartmem-kvd -mm :7078 -policy smart-alloc:P=2       # MM daemon (TKM peer)
package main

import (
	"bytes"
	"context"
	"expvar"
	"flag"
	"fmt"
	"io"
	"net"
	"net/http"
	"os"
	"os/signal"
	"runtime"
	"syscall"
	"time"

	"smartmem/internal/durable"
	"smartmem/internal/kvstore"
	"smartmem/internal/mem"
	"smartmem/internal/policy"
	"smartmem/internal/tkm"
	"smartmem/internal/tmem"
)

// The durable write-through store must keep satisfying the wire server's
// store surface.
var _ kvstore.Store = (*durable.Store)(nil)

const pageSize = 4096

// drainTimeout bounds how long a graceful shutdown waits for in-flight
// connections before closing them forcibly.
const drainTimeout = 5 * time.Second

func main() {
	var (
		listen   = flag.String("listen", "", "serve the tmem KV store on this address")
		connect  = flag.String("connect", "", "connect to a KV daemon and run the demo")
		mmAddr   = flag.String("mm", "", "serve the Memory Manager (TKM protocol) on this address")
		polSpec  = flag.String("policy", "smart-alloc:P=2", "policy for -mm mode")
		pages    = flag.Int64("pages", 65536, "tmem capacity in pages for -listen mode")
		shards   = flag.Int("shards", 0, "store lock stripes for -listen mode; 0 means GOMAXPROCS")
		remote   = flag.String("remote", "", "chain a remote tmem tier: ship overflow pages to the smartmem-kvd at this address (keep chains acyclic)")
		remoteVM = flag.Int("remote-owner", 1000, "VM id this node's overflow pages are accounted under on the -remote peer")
		compress = flag.Int64("compress", 0, "attach a compressed in-RAM tier with this slab arena budget in MiB (0 disables)")
		codec    = flag.String("codec", "lz", "compressed-tier codec (lz, nocompress)")
		durDir   = flag.String("durable", "", "journal persistent pools to a WAL + snapshots under this directory and recover them on start")
		fsyncStr = flag.String("fsync", "interval", "durable commit policy: always, interval or off")
		debug    = flag.String("debug", "", "serve expvar debug counters (JSON over HTTP) on this address in -listen mode")
		demo     = flag.Bool("demo", false, "run put/get/flush round trips in -connect mode")
	)
	flag.Parse()

	switch {
	case *listen != "":
		backend := newBackend(mem.Pages(*pages), *shards)
		var ctier *tmem.CompressedTier
		if *compress > 0 {
			c, err := tmem.CodecByName(*codec)
			fatalIf(err)
			ctier = tmem.NewCompressedTier(tmem.CompressedTierConfig{
				PageSize:      pageSize,
				CapacityBytes: mem.Bytes(*compress) * mem.MiB,
				Codec:         c,
			})
			// Attached before any remote tier: demotions compress locally
			// before the daemon considers shipping them to a peer.
			backend.AttachTier(ctier)
			fmt.Printf("smartmem-kvd: compressed tier: %d MiB arena, codec %s\n", *compress, c.Name())
		}
		if *remote != "" {
			// A bounded retry covers the window where the peer daemon is
			// itself restarting (e.g. recovering its durable state).
			conn, err := kvstore.DialRetry("tcp", *remote, 10, 200*time.Millisecond)
			fatalIf(err)
			// All connection handlers funnel overflow into this one wire
			// client; SyncClient serializes the request/response exchanges.
			svc := kvstore.NewSyncClient(kvstore.NewClient(conn, pageSize))
			backend.AttachTier(tmem.NewRemoteTier("kvd:"+*remote, svc, tmem.VMID(*remoteVM)))
			fmt.Printf("smartmem-kvd: remote tmem tier -> %s (owner vm %d)\n", *remote, *remoteVM)
		}
		node := kvNode{store: backend, backend: backend}
		if *durDir != "" {
			// Recovery runs after the tier stack is assembled so journaled
			// pages land back through the same demotion path they used live.
			fp, err := durable.ParseFsync(*fsyncStr)
			fatalIf(err)
			node, err = openDurable(backend, *durDir, fp, os.Stdout)
			fatalIf(err)
		}
		l, err := net.Listen("tcp", *listen)
		fatalIf(err)
		if *debug != "" {
			dl, err := net.Listen("tcp", *debug)
			fatalIf(err)
			node.metrics = kvstore.NewMetrics()
			publishDebugVars(node)
			mux := http.NewServeMux()
			mux.Handle("/debug/vars", expvar.Handler())
			mux.Handle("/metrics", promHandler(node, node.metrics))
			mux.Handle("/", expvar.Handler())
			go func() { fatalIf(http.Serve(dl, mux)) }()
			fmt.Printf("smartmem-kvd: debug counters on http://%s/ (Prometheus on /metrics)\n", dl.Addr())
		}
		fmt.Printf("smartmem-kvd: serving %d tmem pages (%d shards) on %s\n",
			*pages, backend.Shards(), l.Addr())
		sigs := make(chan os.Signal, 1)
		signal.Notify(sigs, os.Interrupt, syscall.SIGTERM)
		fatalIf(serveKV(l, node, sigs, drainTimeout, os.Stdout))

	case *mmAddr != "":
		// Parse the policy spec exactly once. The parsed policies are
		// stateless values; the only stateful layer is the dedup wrapper,
		// and every TKM connection still gets a fresh one from the factory.
		pol, err := policy.Parse(*polSpec)
		fatalIf(err)
		if policy.IsNoTmem(pol) {
			// The sentinel means "disable tmem on the node"; an MM daemon
			// has no node to disable — serving it would just starve every
			// connected TKM of targets forever.
			fatalIf(fmt.Errorf("-mm cannot serve %q: pick a target policy", policy.NoTmemName))
		}
		l, err := net.Listen("tcp", *mmAddr)
		fatalIf(err)
		fmt.Printf("smartmem-kvd: Memory Manager (%s) listening on %s\n", *polSpec, l.Addr())
		fatalIf(tkm.ListenAndServeMM(l, func() tkm.PolicyFunc {
			return policy.NewDedup(pol)
		}))

	case *connect != "":
		runClient(*connect, *demo)

	default:
		fmt.Fprintln(os.Stderr, "smartmem-kvd: one of -listen, -connect or -mm is required")
		os.Exit(2)
	}
}

// newBackend builds the daemon's sharded data store. shards <= 0 sizes the
// stripe count to GOMAXPROCS (tmem rounds it up to a power of two).
func newBackend(pages mem.Pages, shards int) *tmem.Backend {
	if shards <= 0 {
		shards = runtime.GOMAXPROCS(0)
	}
	return tmem.NewBackendOpts(pages, tmem.Options{
		Shards:   shards,
		NewStore: func() tmem.PageStore { return tmem.NewDataStore(pageSize) },
	})
}

// kvNode bundles what a serving daemon is made of: the store the wire
// protocol executes against (the bare backend, or the durable write-through
// wrapper around it) plus the durable pieces when -durable is on.
type kvNode struct {
	store   kvstore.Store
	backend *tmem.Backend
	dlog    *durable.Log     // nil without -durable
	dstore  *durable.Store   // nil without -durable
	metrics *kvstore.Metrics // nil without -debug
}

// openDurable opens (and recovers) the journal under dir and wraps backend
// in the write-through store. The recovery summary is printed to out.
func openDurable(backend *tmem.Backend, dir string, fp durable.FsyncPolicy, out io.Writer) (kvNode, error) {
	blob, err := durable.NewDirStore(dir)
	if err != nil {
		return kvNode{}, err
	}
	dlog, err := durable.Open(durable.Options{
		Blob:     blob,
		PageSize: pageSize,
		Fsync:    fp,
	})
	if err != nil {
		return kvNode{}, err
	}
	dstore := durable.NewStore(backend, dlog)
	rs, err := dstore.Recover()
	if err != nil {
		dlog.Close()
		return kvNode{}, err
	}
	ri := dlog.Recovery()
	boot := "replayed WAL"
	switch {
	case ri.CleanShutdown:
		boot = "clean shutdown marker: skipped WAL replay"
	case ri.SnapshotLoaded:
		boot = fmt.Sprintf("snapshot %d (%d pages) + WAL tail", ri.SnapshotSeq, ri.SnapshotPages)
	}
	fmt.Fprintf(out, "smartmem-kvd: durable store %s (fsync=%s): %s; %d segments, %d records\n",
		dir, fp, boot, ri.WALSegments, ri.WALRecords)
	if ri.TornTail || ri.CorruptRecords > 0 {
		fmt.Fprintf(out, "smartmem-kvd: durable recovery repaired the log (torn tail: %v, corrupt records: %d)\n",
			ri.TornTail, ri.CorruptRecords)
	}
	fmt.Fprintf(out, "smartmem-kvd: recovered %d pools, %d pages (%d beyond capacity, served from mirror)\n",
		rs.Pools, rs.Pages, rs.Dropped)
	return kvNode{store: dstore, backend: backend, dlog: dlog, dstore: dstore}, nil
}

// serveKV serves the KV protocol on l until a shutdown signal arrives,
// then drains connections (forcing stragglers closed after drain) and
// prints the final store statistics. With a durable journal attached the
// graceful path also compacts and writes the clean-shutdown marker, so the
// next start skips the WAL replay.
func serveKV(l net.Listener, node kvNode, sigs <-chan os.Signal, drain time.Duration, out io.Writer) error {
	srv := kvstore.NewServerStore(node.store)
	if node.metrics != nil {
		srv.SetMetrics(node.metrics)
	}
	errc := make(chan error, 1)
	go func() { errc <- srv.Serve(l) }()
	select {
	case err := <-errc:
		return err
	case sig := <-sigs:
		fmt.Fprintf(out, "smartmem-kvd: %v: draining connections\n", sig)
		ctx, cancel := context.WithTimeout(context.Background(), drain)
		defer cancel()
		if err := srv.Shutdown(ctx); err != nil {
			fmt.Fprintf(out, "smartmem-kvd: forced close after drain timeout: %v\n", err)
		}
		if err := <-errc; err != nil {
			return err
		}
		printFinalStats(out, node.backend)
		if node.dlog != nil {
			printDurableStats(out, node)
			if err := node.dlog.CloseClean(); err != nil {
				fmt.Fprintf(out, "smartmem-kvd: durable clean shutdown failed (next start replays the WAL): %v\n", err)
			} else {
				fmt.Fprintln(out, "smartmem-kvd: durable state compacted, clean shutdown marker written")
			}
		}
		return nil
	}
}

// printDurableStats reports the journal's end state on shutdown.
func printDurableStats(w io.Writer, node kvNode) {
	ls := node.dlog.Stats()
	fmt.Fprintf(w, "smartmem-kvd:   durable: %d pages (%v) in %d pools; %d appends (%v), %d fsyncs, %d compactions, degraded %v\n",
		ls.PagesLive, mem.Bytes(ls.BytesLive), ls.Pools,
		ls.Appends, mem.Bytes(ls.AppendedBytes), ls.Fsyncs, ls.Compactions,
		node.dstore.Degraded())
	if n := node.dstore.RecoveryServed(); n > 0 {
		fmt.Fprintf(w, "smartmem-kvd:   durable: %d gets served from the recovery mirror\n", n)
	}
}

// publishDebugVars registers the daemon's live counters under the
// "smartmem" expvar key. The snapshot is taken on every HTTP request, so
// the served JSON always reflects the store and its tiers at that moment —
// including compressed-tier detail (stored vs raw bytes, dedup hits, codec
// nanoseconds) when a -compress tier is attached, and WAL/snapshot/recovery
// counters when -durable is on.
func publishDebugVars(node kvNode) {
	b := node.backend
	expvar.Publish("smartmem", expvar.Func(func() any {
		used := b.TotalPages() - b.FreePages()
		doc := map[string]any{
			"pages_total": int64(b.TotalPages()),
			"pages_used":  int64(used),
			"footprint":   b.Footprint(),
		}
		var tiers []map[string]any
		for _, t := range b.Tiers() {
			s := t.Stats()
			m := map[string]any{
				"name":    t.Name(),
				"puts":    s.Puts,
				"puts_ok": s.PutsOK,
				"gets":    s.Gets, "gets_hit": s.GetsHit,
				"flushes": s.PageFlushes + s.ObjectFlushes,
				"errors":  s.Errors,
			}
			if ct, ok := t.(*tmem.CompressedTier); ok {
				cs := ct.CompressedStats()
				m["pages_stored"] = cs.PagesStored
				m["unique_blobs"] = cs.UniqueBlobs
				m["raw_bytes"] = int64(cs.RawBytes)
				m["stored_bytes"] = int64(cs.StoredBytes)
				m["ratio"] = cs.Ratio()
				m["dedup_hits"] = cs.DedupHits
				m["rejected_full"] = cs.RejectedFull
				m["decode_errors"] = cs.DecodeErrors
				m["compress_ns"] = cs.CompressNs
				m["decompress_ns"] = cs.DecompressNs
				m["effective_extra_pages"] = int64(ct.EffectiveExtraPages())
			}
			tiers = append(tiers, m)
		}
		doc["tiers"] = tiers
		if node.dlog != nil {
			ls := node.dlog.Stats()
			ri := node.dlog.Recovery()
			doc["durable"] = map[string]any{
				"wal_appends":       ls.Appends,
				"wal_bytes":         ls.AppendedBytes,
				"fsyncs":            ls.Fsyncs,
				"segments":          ls.Segments,
				"compactions":       ls.Compactions,
				"snapshot_pages":    ls.SnapshotPages,
				"pools":             ls.Pools,
				"pages_live":        ls.PagesLive,
				"bytes_live":        ls.BytesLive,
				"errors":            ls.Errors,
				"degraded":          node.dstore.Degraded(),
				"recovery_served":   node.dstore.RecoveryServed(),
				"recovery_clean":    ri.CleanShutdown,
				"recovery_snapshot": ri.SnapshotLoaded,
				"recovery_records":  ri.WALRecords,
				"recovery_torn":     ri.TornTail,
				"recovery_corrupt":  ri.CorruptRecords,
			}
		}
		return doc
	}))
}

// printFinalStats reports the store's end state: capacity in use, host
// footprint, and cumulative per-VM operation counts.
func printFinalStats(w io.Writer, b *tmem.Backend) {
	used := b.TotalPages() - b.FreePages()
	fmt.Fprintf(w, "smartmem-kvd: final store state: %d/%d pages used, footprint %v\n",
		used, b.TotalPages(), mem.Bytes(b.Footprint()))
	for _, vm := range b.VMs() {
		c, ok := b.Counts(vm)
		if !ok {
			continue
		}
		fmt.Fprintf(w, "smartmem-kvd:   vm %d: puts %d/%d gets %d/%d flushes %d evicted %d\n",
			vm, c.PutsSucc, c.PutsTotal, c.GetsHit, c.GetsTotal, c.Flushes, c.EphEvicted)
	}
	for _, t := range b.Tiers() {
		s := t.Stats()
		fmt.Fprintf(w, "smartmem-kvd:   tier %s: puts %d/%d gets %d/%d flushes %d errors %d\n",
			t.Name(), s.PutsOK, s.Puts, s.GetsHit, s.Gets, s.PageFlushes+s.ObjectFlushes, s.Errors)
		if ct, ok := t.(*tmem.CompressedTier); ok {
			cs := ct.CompressedStats()
			fmt.Fprintf(w, "smartmem-kvd:   tier %s: %d pages in %d blobs, %v raw -> %v stored (%.2fx), dedup hits %d, decode errors %d\n",
				t.Name(), cs.PagesStored, cs.UniqueBlobs, cs.RawBytes, cs.StoredBytes,
				cs.Ratio(), cs.DedupHits, cs.DecodeErrors)
		}
	}
}

func runClient(addr string, demo bool) {
	conn, err := net.Dial("tcp", addr)
	fatalIf(err)
	cl := kvstore.NewClient(conn, pageSize)
	defer cl.Close()

	pool, err := cl.NewPool(1, tmem.Persistent)
	fatalIf(err)
	fmt.Printf("created pool %d\n", pool)
	if !demo {
		return
	}

	key := tmem.Key{Pool: pool, Object: 42, Index: 7}
	page := make([]byte, pageSize)
	for i := range page {
		page[i] = byte(i)
	}
	st, err := cl.Put(key, page)
	fatalIf(err)
	fmt.Printf("put %v -> %v\n", key, st)

	st, got, err := cl.Get(key)
	fatalIf(err)
	ok := st == tmem.STmem && bytes.Equal(got, page)
	fmt.Printf("get %v -> %v (contents valid: %v)\n", key, st, ok)

	st, err = cl.FlushPage(key)
	fatalIf(err)
	fmt.Printf("flush %v -> %v\n", key, st)

	st, _, err = cl.Get(key)
	fatalIf(err)
	fmt.Printf("get after flush -> %v (expected E_TMEM)\n", st)
	if !ok || st != tmem.ETmem {
		os.Exit(1)
	}

	// Batch frames: a run of pages in one round trip each way.
	const run = 16
	keys := make([]tmem.Key, run)
	datas := make([][]byte, run)
	sts := make([]tmem.Status, run)
	for i := range keys {
		keys[i] = tmem.Key{Pool: pool, Object: 43, Index: tmem.PageIndex(i)}
		datas[i] = page
	}
	fatalIf(cl.PutBatch(keys, datas, sts))
	landed := 0
	for _, st := range sts {
		if st == tmem.STmem {
			landed++
		}
	}
	fmt.Printf("put-batch %d pages -> %d stored (1 round trip)\n", run, landed)
	fatalIf(cl.GetBatch(keys, nil, sts))
	hits := 0
	for _, st := range sts {
		if st == tmem.STmem {
			hits++
		}
	}
	fmt.Printf("get-batch %d pages -> %d hits (1 round trip)\n", run, hits)
	if landed != run || hits != run {
		os.Exit(1)
	}
}

func fatalIf(err error) {
	if err != nil {
		fmt.Fprintln(os.Stderr, "smartmem-kvd:", err)
		os.Exit(1)
	}
}
