// Command smartmem-kvd exposes the real tmem key–value backend over TCP
// (see internal/kvstore for the protocol), demonstrating that the store is
// a genuine page-copy key–value service and not just a simulation
// artefact. It also runs the Memory Manager daemon side of the TKM
// protocol.
//
// The served store is sharded (tmem.NewBackendOpts): keys hash across
// -shards lock stripes so concurrent connections scale with cores instead
// of serializing on one mutex. Requests may be pipelined, and the batch
// frames (OpPutBatch/OpGetBatch) move whole runs of pages per round trip
// — the server executes them through the backend's stripe-grouped batch
// path, one lock acquisition per stripe per run. SIGINT/SIGTERM trigger a
// graceful stop: accepting ends, in-flight connections drain (bounded by
// a timeout), and the final store statistics are printed.
//
// A daemon may additionally chain a RAMster-style remote tmem tier with
// -remote: overflow pages its local store rejects (out of frames) are
// shipped to a peer smartmem-kvd over the same wire protocol, and only
// puts neither node can hold fail back to the client. Keep -remote chains
// acyclic (A→B, or A→B→C; never back to A): overflow requests are served
// through the peer's full tier stack, so a cycle would bounce pages.
//
// With -compress the daemon additionally attaches a compressed in-RAM tier
// ahead of any remote tier: overflow pages compress and dedup into a slab
// arena of the given byte budget before the daemon considers shipping them
// to a peer or failing the put. -debug serves Go expvar (JSON over HTTP)
// with live tier and compression counters — stored vs raw bytes, dedup
// hits, codec nanoseconds — so the achieved ratio is observable on a
// running daemon.
//
// Modes:
//
//	smartmem-kvd -listen :7077 -pages 262144 -shards 8   # KV daemon
//	smartmem-kvd -listen :7077 -remote far:7077          # + remote tier
//	smartmem-kvd -listen :7077 -compress 256             # + 256 MiB compressed tier
//	smartmem-kvd -listen :7077 -debug :7079              # + expvar counters
//	smartmem-kvd -connect :7077 -demo                    # KV client demo
//	smartmem-kvd -mm :7078 -policy smart-alloc:P=2       # MM daemon (TKM peer)
package main

import (
	"bytes"
	"context"
	"expvar"
	"flag"
	"fmt"
	"io"
	"net"
	"net/http"
	"os"
	"os/signal"
	"runtime"
	"syscall"
	"time"

	"smartmem/internal/kvstore"
	"smartmem/internal/mem"
	"smartmem/internal/policy"
	"smartmem/internal/tkm"
	"smartmem/internal/tmem"
)

const pageSize = 4096

// drainTimeout bounds how long a graceful shutdown waits for in-flight
// connections before closing them forcibly.
const drainTimeout = 5 * time.Second

func main() {
	var (
		listen   = flag.String("listen", "", "serve the tmem KV store on this address")
		connect  = flag.String("connect", "", "connect to a KV daemon and run the demo")
		mmAddr   = flag.String("mm", "", "serve the Memory Manager (TKM protocol) on this address")
		polSpec  = flag.String("policy", "smart-alloc:P=2", "policy for -mm mode")
		pages    = flag.Int64("pages", 65536, "tmem capacity in pages for -listen mode")
		shards   = flag.Int("shards", 0, "store lock stripes for -listen mode; 0 means GOMAXPROCS")
		remote   = flag.String("remote", "", "chain a remote tmem tier: ship overflow pages to the smartmem-kvd at this address (keep chains acyclic)")
		remoteVM = flag.Int("remote-owner", 1000, "VM id this node's overflow pages are accounted under on the -remote peer")
		compress = flag.Int64("compress", 0, "attach a compressed in-RAM tier with this slab arena budget in MiB (0 disables)")
		codec    = flag.String("codec", "lz", "compressed-tier codec (lz, nocompress)")
		debug    = flag.String("debug", "", "serve expvar debug counters (JSON over HTTP) on this address in -listen mode")
		demo     = flag.Bool("demo", false, "run put/get/flush round trips in -connect mode")
	)
	flag.Parse()

	switch {
	case *listen != "":
		backend := newBackend(mem.Pages(*pages), *shards)
		var ctier *tmem.CompressedTier
		if *compress > 0 {
			c, err := tmem.CodecByName(*codec)
			fatalIf(err)
			ctier = tmem.NewCompressedTier(tmem.CompressedTierConfig{
				PageSize:      pageSize,
				CapacityBytes: mem.Bytes(*compress) * mem.MiB,
				Codec:         c,
			})
			// Attached before any remote tier: demotions compress locally
			// before the daemon considers shipping them to a peer.
			backend.AttachTier(ctier)
			fmt.Printf("smartmem-kvd: compressed tier: %d MiB arena, codec %s\n", *compress, c.Name())
		}
		if *remote != "" {
			conn, err := net.Dial("tcp", *remote)
			fatalIf(err)
			// All connection handlers funnel overflow into this one wire
			// client; SyncClient serializes the request/response exchanges.
			svc := kvstore.NewSyncClient(kvstore.NewClient(conn, pageSize))
			backend.AttachTier(tmem.NewRemoteTier("kvd:"+*remote, svc, tmem.VMID(*remoteVM)))
			fmt.Printf("smartmem-kvd: remote tmem tier -> %s (owner vm %d)\n", *remote, *remoteVM)
		}
		l, err := net.Listen("tcp", *listen)
		fatalIf(err)
		if *debug != "" {
			dl, err := net.Listen("tcp", *debug)
			fatalIf(err)
			publishDebugVars(backend)
			go func() { fatalIf(http.Serve(dl, expvar.Handler())) }()
			fmt.Printf("smartmem-kvd: debug counters on http://%s/\n", dl.Addr())
		}
		fmt.Printf("smartmem-kvd: serving %d tmem pages (%d shards) on %s\n",
			*pages, backend.Shards(), l.Addr())
		sigs := make(chan os.Signal, 1)
		signal.Notify(sigs, os.Interrupt, syscall.SIGTERM)
		fatalIf(serveKV(l, backend, sigs, drainTimeout, os.Stdout))

	case *mmAddr != "":
		// Parse the policy spec exactly once. The parsed policies are
		// stateless values; the only stateful layer is the dedup wrapper,
		// and every TKM connection still gets a fresh one from the factory.
		pol, err := policy.Parse(*polSpec)
		fatalIf(err)
		if policy.IsNoTmem(pol) {
			// The sentinel means "disable tmem on the node"; an MM daemon
			// has no node to disable — serving it would just starve every
			// connected TKM of targets forever.
			fatalIf(fmt.Errorf("-mm cannot serve %q: pick a target policy", policy.NoTmemName))
		}
		l, err := net.Listen("tcp", *mmAddr)
		fatalIf(err)
		fmt.Printf("smartmem-kvd: Memory Manager (%s) listening on %s\n", *polSpec, l.Addr())
		fatalIf(tkm.ListenAndServeMM(l, func() tkm.PolicyFunc {
			return policy.NewDedup(pol)
		}))

	case *connect != "":
		runClient(*connect, *demo)

	default:
		fmt.Fprintln(os.Stderr, "smartmem-kvd: one of -listen, -connect or -mm is required")
		os.Exit(2)
	}
}

// newBackend builds the daemon's sharded data store. shards <= 0 sizes the
// stripe count to GOMAXPROCS (tmem rounds it up to a power of two).
func newBackend(pages mem.Pages, shards int) *tmem.Backend {
	if shards <= 0 {
		shards = runtime.GOMAXPROCS(0)
	}
	return tmem.NewBackendOpts(pages, tmem.Options{
		Shards:   shards,
		NewStore: func() tmem.PageStore { return tmem.NewDataStore(pageSize) },
	})
}

// serveKV serves the KV protocol on l until a shutdown signal arrives,
// then drains connections (forcing stragglers closed after drain) and
// prints the final store statistics.
func serveKV(l net.Listener, backend *tmem.Backend, sigs <-chan os.Signal, drain time.Duration, out io.Writer) error {
	srv := kvstore.NewServer(backend)
	errc := make(chan error, 1)
	go func() { errc <- srv.Serve(l) }()
	select {
	case err := <-errc:
		return err
	case sig := <-sigs:
		fmt.Fprintf(out, "smartmem-kvd: %v: draining connections\n", sig)
		ctx, cancel := context.WithTimeout(context.Background(), drain)
		defer cancel()
		if err := srv.Shutdown(ctx); err != nil {
			fmt.Fprintf(out, "smartmem-kvd: forced close after drain timeout: %v\n", err)
		}
		if err := <-errc; err != nil {
			return err
		}
		printFinalStats(out, backend)
		return nil
	}
}

// publishDebugVars registers the daemon's live counters under the
// "smartmem" expvar key. The snapshot is taken on every HTTP request, so
// the served JSON always reflects the store and its tiers at that moment —
// including compressed-tier detail (stored vs raw bytes, dedup hits, codec
// nanoseconds) when a -compress tier is attached.
func publishDebugVars(b *tmem.Backend) {
	expvar.Publish("smartmem", expvar.Func(func() any {
		used := b.TotalPages() - b.FreePages()
		doc := map[string]any{
			"pages_total": int64(b.TotalPages()),
			"pages_used":  int64(used),
			"footprint":   b.Footprint(),
		}
		var tiers []map[string]any
		for _, t := range b.Tiers() {
			s := t.Stats()
			m := map[string]any{
				"name":    t.Name(),
				"puts":    s.Puts,
				"puts_ok": s.PutsOK,
				"gets":    s.Gets, "gets_hit": s.GetsHit,
				"flushes": s.PageFlushes + s.ObjectFlushes,
				"errors":  s.Errors,
			}
			if ct, ok := t.(*tmem.CompressedTier); ok {
				cs := ct.CompressedStats()
				m["pages_stored"] = cs.PagesStored
				m["unique_blobs"] = cs.UniqueBlobs
				m["raw_bytes"] = int64(cs.RawBytes)
				m["stored_bytes"] = int64(cs.StoredBytes)
				m["ratio"] = cs.Ratio()
				m["dedup_hits"] = cs.DedupHits
				m["rejected_full"] = cs.RejectedFull
				m["decode_errors"] = cs.DecodeErrors
				m["compress_ns"] = cs.CompressNs
				m["decompress_ns"] = cs.DecompressNs
				m["effective_extra_pages"] = int64(ct.EffectiveExtraPages())
			}
			tiers = append(tiers, m)
		}
		doc["tiers"] = tiers
		return doc
	}))
}

// printFinalStats reports the store's end state: capacity in use, host
// footprint, and cumulative per-VM operation counts.
func printFinalStats(w io.Writer, b *tmem.Backend) {
	used := b.TotalPages() - b.FreePages()
	fmt.Fprintf(w, "smartmem-kvd: final store state: %d/%d pages used, footprint %v\n",
		used, b.TotalPages(), mem.Bytes(b.Footprint()))
	for _, vm := range b.VMs() {
		c, ok := b.Counts(vm)
		if !ok {
			continue
		}
		fmt.Fprintf(w, "smartmem-kvd:   vm %d: puts %d/%d gets %d/%d flushes %d evicted %d\n",
			vm, c.PutsSucc, c.PutsTotal, c.GetsHit, c.GetsTotal, c.Flushes, c.EphEvicted)
	}
	for _, t := range b.Tiers() {
		s := t.Stats()
		fmt.Fprintf(w, "smartmem-kvd:   tier %s: puts %d/%d gets %d/%d flushes %d errors %d\n",
			t.Name(), s.PutsOK, s.Puts, s.GetsHit, s.Gets, s.PageFlushes+s.ObjectFlushes, s.Errors)
		if ct, ok := t.(*tmem.CompressedTier); ok {
			cs := ct.CompressedStats()
			fmt.Fprintf(w, "smartmem-kvd:   tier %s: %d pages in %d blobs, %v raw -> %v stored (%.2fx), dedup hits %d, decode errors %d\n",
				t.Name(), cs.PagesStored, cs.UniqueBlobs, cs.RawBytes, cs.StoredBytes,
				cs.Ratio(), cs.DedupHits, cs.DecodeErrors)
		}
	}
}

func runClient(addr string, demo bool) {
	conn, err := net.Dial("tcp", addr)
	fatalIf(err)
	cl := kvstore.NewClient(conn, pageSize)
	defer cl.Close()

	pool, err := cl.NewPool(1, tmem.Persistent)
	fatalIf(err)
	fmt.Printf("created pool %d\n", pool)
	if !demo {
		return
	}

	key := tmem.Key{Pool: pool, Object: 42, Index: 7}
	page := make([]byte, pageSize)
	for i := range page {
		page[i] = byte(i)
	}
	st, err := cl.Put(key, page)
	fatalIf(err)
	fmt.Printf("put %v -> %v\n", key, st)

	st, got, err := cl.Get(key)
	fatalIf(err)
	ok := st == tmem.STmem && bytes.Equal(got, page)
	fmt.Printf("get %v -> %v (contents valid: %v)\n", key, st, ok)

	st, err = cl.FlushPage(key)
	fatalIf(err)
	fmt.Printf("flush %v -> %v\n", key, st)

	st, _, err = cl.Get(key)
	fatalIf(err)
	fmt.Printf("get after flush -> %v (expected E_TMEM)\n", st)
	if !ok || st != tmem.ETmem {
		os.Exit(1)
	}

	// Batch frames: a run of pages in one round trip each way.
	const run = 16
	keys := make([]tmem.Key, run)
	datas := make([][]byte, run)
	sts := make([]tmem.Status, run)
	for i := range keys {
		keys[i] = tmem.Key{Pool: pool, Object: 43, Index: tmem.PageIndex(i)}
		datas[i] = page
	}
	fatalIf(cl.PutBatch(keys, datas, sts))
	landed := 0
	for _, st := range sts {
		if st == tmem.STmem {
			landed++
		}
	}
	fmt.Printf("put-batch %d pages -> %d stored (1 round trip)\n", run, landed)
	fatalIf(cl.GetBatch(keys, nil, sts))
	hits := 0
	for _, st := range sts {
		if st == tmem.STmem {
			hits++
		}
	}
	fmt.Printf("get-batch %d pages -> %d hits (1 round trip)\n", run, hits)
	if landed != run || hits != run {
		os.Exit(1)
	}
}

func fatalIf(err error) {
	if err != nil {
		fmt.Fprintln(os.Stderr, "smartmem-kvd:", err)
		os.Exit(1)
	}
}
