// Command smartmem-kvd exposes the real tmem key–value backend over TCP
// (see internal/kvstore for the protocol), demonstrating that the store is
// a genuine page-copy key–value service and not just a simulation
// artefact. It also runs the Memory Manager daemon side of the TKM
// protocol.
//
// Modes:
//
//	smartmem-kvd -listen :7077 -pages 262144        # KV daemon
//	smartmem-kvd -connect :7077 -demo               # KV client demo
//	smartmem-kvd -mm :7078 -policy smart-alloc:P=2  # MM daemon (TKM peer)
package main

import (
	"bytes"
	"flag"
	"fmt"
	"net"
	"os"

	"smartmem/internal/kvstore"
	"smartmem/internal/mem"
	"smartmem/internal/policy"
	"smartmem/internal/tkm"
	"smartmem/internal/tmem"
)

const pageSize = 4096

func main() {
	var (
		listen  = flag.String("listen", "", "serve the tmem KV store on this address")
		connect = flag.String("connect", "", "connect to a KV daemon and run the demo")
		mmAddr  = flag.String("mm", "", "serve the Memory Manager (TKM protocol) on this address")
		polSpec = flag.String("policy", "smart-alloc:P=2", "policy for -mm mode")
		pages   = flag.Int64("pages", 65536, "tmem capacity in pages for -listen mode")
		demo    = flag.Bool("demo", false, "run put/get/flush round trips in -connect mode")
	)
	flag.Parse()

	switch {
	case *listen != "":
		backend := tmem.NewBackend(mem.Pages(*pages), tmem.NewDataStore(pageSize))
		l, err := net.Listen("tcp", *listen)
		fatalIf(err)
		fmt.Printf("smartmem-kvd: serving %d tmem pages on %s\n", *pages, l.Addr())
		fatalIf(kvstore.NewServer(backend).Serve(l))

	case *mmAddr != "":
		if _, err := policy.Parse(*polSpec); err != nil {
			fatalIf(err)
		}
		l, err := net.Listen("tcp", *mmAddr)
		fatalIf(err)
		fmt.Printf("smartmem-kvd: Memory Manager (%s) listening on %s\n", *polSpec, l.Addr())
		fatalIf(tkm.ListenAndServeMM(l, func() tkm.PolicyFunc {
			p, _ := policy.Parse(*polSpec)
			return policy.NewDedup(p)
		}))

	case *connect != "":
		runClient(*connect, *demo)

	default:
		fmt.Fprintln(os.Stderr, "smartmem-kvd: one of -listen, -connect or -mm is required")
		os.Exit(2)
	}
}

func runClient(addr string, demo bool) {
	conn, err := net.Dial("tcp", addr)
	fatalIf(err)
	cl := kvstore.NewClient(conn, pageSize)
	defer cl.Close()

	pool, err := cl.NewPool(1, tmem.Persistent)
	fatalIf(err)
	fmt.Printf("created pool %d\n", pool)
	if !demo {
		return
	}

	key := tmem.Key{Pool: pool, Object: 42, Index: 7}
	page := make([]byte, pageSize)
	for i := range page {
		page[i] = byte(i)
	}
	st, err := cl.Put(key, page)
	fatalIf(err)
	fmt.Printf("put %v -> %v\n", key, st)

	st, got, err := cl.Get(key)
	fatalIf(err)
	ok := st == tmem.STmem && bytes.Equal(got, page)
	fmt.Printf("get %v -> %v (contents valid: %v)\n", key, st, ok)

	st, err = cl.FlushPage(key)
	fatalIf(err)
	fmt.Printf("flush %v -> %v\n", key, st)

	st, _, err = cl.Get(key)
	fatalIf(err)
	fmt.Printf("get after flush -> %v (expected E_TMEM)\n", st)
	if !ok || st != tmem.ETmem {
		os.Exit(1)
	}
}

func fatalIf(err error) {
	if err != nil {
		fmt.Fprintln(os.Stderr, "smartmem-kvd:", err)
		os.Exit(1)
	}
}
