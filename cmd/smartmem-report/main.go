// Command smartmem-report regenerates the paper's evaluation artefacts:
// every running-time figure (3, 5, 7, 9), every tmem-usage figure
// (4, 6, 8, 10) and both tables (I, II), as text plus optional CSV/JSON
// exports, and can stream every underlying run's lifecycle events as
// NDJSON for machine consumption.
//
// Usage:
//
//	smartmem-report                 # everything, 5 seeds, all CPUs
//	smartmem-report -fig 5 -seeds 2 # one figure, quicker
//	smartmem-report -parallel 1     # sequential (same output, slower)
//	smartmem-report -out results/   # also write CSVs
//	smartmem-report -out results/ -json   # JSON instead of CSV
//	smartmem-report -events runs.ndjson   # job-tagged event stream
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"runtime"
	"strings"

	"smartmem/internal/experiments"
	"smartmem/internal/report"
	"smartmem/internal/tmem"
	"smartmem/sinks"
)

// figureSpec maps a paper figure to its scenario and kind.
type figureSpec struct {
	fig      int
	slug     string
	kind     string   // "times" or "series"
	policies []string // series panels
}

var figures = []figureSpec{
	{3, "s1", "times", nil},
	{4, "s1", "series", []string{"greedy", "smart-alloc:P=0.75"}},
	{5, "s2", "times", nil},
	{6, "s2", "series", []string{"greedy", "smart-alloc:P=6"}},
	{7, "usemem", "times", nil},
	{8, "usemem", "series", []string{"greedy", "reconf-static", "smart-alloc:P=2"}},
	{9, "s3", "times", nil},
	{10, "s3", "series", []string{"greedy", "static-alloc", "reconf-static", "smart-alloc:P=4"}},
}

func main() {
	var (
		fig      = flag.Int("fig", 0, "regenerate a single figure (3–10); 0 = all")
		table    = flag.Int("table", 0, "print a single table (1 or 2); 0 = all")
		nSeeds   = flag.Int("seeds", 5, "repetitions per (scenario, policy)")
		seed     = flag.Uint64("seed", 11, "seed for series figures")
		outDir   = flag.String("out", "", "directory for CSV/JSON output (optional)")
		asJSON   = flag.Bool("json", false, "write -out artifacts as JSON documents instead of CSV")
		evPath   = flag.String("events", "", `stream every run's lifecycle events as job-tagged NDJSON to this file ("-" = stdout)`)
		figOnly  = flag.Bool("figures-only", false, "skip tables")
		parallel = flag.Int("parallel", runtime.NumCPU(), "concurrent simulation runs (1 = sequential)")
		memoDir  = flag.String("memo", "", "directory of the on-disk run cache; rerunning a report recalls already-computed cells instead of resimulating (ignored while -events streams, since memo hits replay no events)")
		quiet    = flag.Bool("quiet", false, "suppress live progress on stderr")
		listPol  = flag.Bool("list-policies", false, "list registered policies and exit")
	)
	flag.Parse()

	if *listPol {
		must(experiments.PolicyTable().Render(os.Stdout))
		return
	}

	seeds := experiments.DefaultSeeds
	if *nSeeds < len(seeds) && *nSeeds > 0 {
		seeds = seeds[:*nSeeds]
	}
	opt := experiments.Options{Parallelism: *parallel}
	if *memoDir != "" {
		cache, err := experiments.OpenDirMemo(*memoDir)
		must(err)
		opt.Cache = cache
	}
	if !*quiet {
		opt.OnProgress = liveProgress
	}
	if *evPath != "" {
		w := io.Writer(os.Stdout)
		if *evPath != "-" {
			f, err := os.Create(*evPath)
			must(err)
			defer f.Close()
			w = f
		}
		enc := json.NewEncoder(w)
		// The engine serializes OnEvent calls, so encoding here is safe;
		// each line carries the job that produced the event.
		opt.OnEvent = func(j experiments.Job, e experiments.RunEvent) {
			m := sinks.Encode(e)
			m["scenario"] = j.Scenario.Slug
			m["policy"] = j.PolicySpec
			m["seed"] = j.Seed
			must(enc.Encode(m))
		}
	}

	if !*figOnly && (*fig == 0 || *table != 0) {
		if *table == 0 || *table == 1 {
			printTable1()
		}
		if *table == 0 || *table == 2 {
			must(experiments.ScenarioTable().Render(os.Stdout))
			fmt.Println()
		}
		if *table != 0 {
			return
		}
	}

	for _, fs := range figures {
		if *fig != 0 && *fig != fs.fig {
			continue
		}
		scn, err := experiments.BySlug(fs.slug)
		must(err)
		switch fs.kind {
		case "times":
			fmt.Printf("=== Figure %d: %s running times ===\n", fs.fig, scn.Name)
			tab, err := experiments.TimesOpts(scn, nil, seeds, opt)
			must(err)
			must(experiments.TimesReport(tab).Render(os.Stdout))
			fmt.Println()
			if *outDir != "" {
				if *asJSON {
					writeArtifact(*outDir, fmt.Sprintf("fig%d_times.json", fs.fig), func(w io.Writer) error {
						return experiments.WriteTimesJSON(w, tab)
					})
				} else {
					writeArtifact(*outDir, fmt.Sprintf("fig%d_times.csv", fs.fig), func(w io.Writer) error {
						return experiments.WriteTimesCSV(w, tab)
					})
				}
			}
		case "series":
			fmt.Printf("=== Figure %d: %s tmem usage over time ===\n", fs.fig, scn.Name)
			runs, err := experiments.SeriesSet(scn, fs.policies, *seed, opt)
			must(err)
			for i, sr := range runs {
				must(experiments.RenderSeries(os.Stdout, sr))
				fmt.Println()
				if *outDir != "" {
					sr := sr
					safe := policyFileName(fs.policies[i])
					if *asJSON {
						writeArtifact(*outDir, fmt.Sprintf("fig%d_%s_series.json", fs.fig, safe), func(w io.Writer) error {
							enc := json.NewEncoder(w)
							enc.SetIndent("", "  ")
							return enc.Encode(map[string]any{
								"schema":   "smartmem/series@1",
								"scenario": sr.Scenario.Slug,
								"policy":   sr.PolicySpec,
								"seed":     sr.Seed,
								"result":   sinks.EncodeResult(sr.Result),
							})
						})
					} else {
						writeArtifact(*outDir, fmt.Sprintf("fig%d_%s_series.csv", fs.fig, safe), sr.Result.Series.WriteCSV)
					}
				}
			}
		}
	}
}

// liveProgress writes a self-overwriting job counter to stderr while a
// sweep runs, ending the line when the sweep completes.
func liveProgress(done, total int, j experiments.Job) {
	fmt.Fprintf(os.Stderr, "\r  [%d/%d] %-48s", done, total, j.String())
	if done == total {
		fmt.Fprintln(os.Stderr)
	}
}

// printTable1 prints Table I: the statistics the hypervisor collects, with
// a live sample demonstrating each field.
func printTable1() {
	b := tmem.NewBackend(1024, tmem.NewMetaStore(4096))
	pool := b.NewPool(1, tmem.Persistent)
	b.RegisterVM(2)
	b.SetTarget(1, 2)
	for i := 0; i < 4; i++ {
		b.Put(tmem.Key{Pool: pool, Object: 1, Index: tmem.PageIndex(i)}, nil)
	}
	ms := b.Sample(1)
	v, _ := ms.Find(1)

	tb := &report.Table{
		Title:   "Table I — Memory statistics used in SmarTmem (live sample; interval 1s)",
		Headers: []string{"statistic", "description", "sample"},
	}
	tb.AddRow("E_TMEM", "operation cannot succeed", tmem.ETmem.String())
	tb.AddRow("S_TMEM", "operation succeeded", tmem.STmem.String())
	tb.AddRow("node_info.free_tmem", "free tmem pages", fmt.Sprint(ms.FreeTmem))
	tb.AddRow("node_info.vm_count", "registered VMs", fmt.Sprint(ms.VMCount()))
	tb.AddRow("vm_data_hyp[id].vm_id", "VM identifier in Xen", fmt.Sprint(v.ID))
	tb.AddRow("vm_data_hyp[id].tmem_used", "tmem pages used by VM", fmt.Sprint(v.TmemUsed))
	tb.AddRow("vm_data_hyp[id].mm_target", "target pages for VM", fmt.Sprint(v.MMTarget))
	tb.AddRow("vm_data_hyp[id].puts_total", "puts this interval", fmt.Sprint(v.PutsTotal))
	tb.AddRow("vm_data_hyp[id].puts_succ", "successful puts this interval", fmt.Sprint(v.PutsSucc))
	tb.AddRow("memstats.vm_count", "VMs seen by the MM", fmt.Sprint(ms.VMCount()))
	tb.AddRow("mm_out[i].vm_id / mm_target", "MM policy output", "applied via ApplyTargets")
	must(tb.Render(os.Stdout))
	fmt.Println()
}

// policyFileName makes a policy spec safe for file names.
func policyFileName(pol string) string {
	return strings.NewReplacer(":", "_", "=", "", "%", "").Replace(pol)
}

// writeArtifact creates dir/name and writes it with fn.
func writeArtifact(dir, name string, fn func(io.Writer) error) {
	must(os.MkdirAll(dir, 0o755))
	f, err := os.Create(filepath.Join(dir, name))
	must(err)
	defer f.Close()
	must(fn(f))
}

func must(err error) {
	if err != nil {
		fmt.Fprintln(os.Stderr, "smartmem-report:", err)
		os.Exit(1)
	}
}
